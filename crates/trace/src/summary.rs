//! End-of-run summary table: per-span-name virtual-time totals, per-track
//! self/total roll-ups, counter and histogram roll-ups (with p50/p90/p99),
//! aggregated across every track of a [`Trace`].

use crate::{EventKind, Histogram, Trace};
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate of all spans sharing a name.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanTotal {
    pub name: String,
    pub spans: u64,
    /// Sum of span durations, in virtual-time units.
    pub virtual_time: u64,
}

/// Virtual-time roll-up of one track.
#[derive(Clone, Debug, PartialEq)]
pub struct TrackTotal {
    pub name: String,
    /// Top-level span time recorded on this track itself.
    pub self_time: u64,
    /// `self_time` plus the totals of descendant tracks (tracks whose
    /// `/`-separated name extends this one).
    pub total_time: u64,
}

/// One counter row (integer counters render without a decimal point).
#[derive(Clone, Debug, PartialEq)]
pub enum CounterTotal {
    Int(String, u64),
    Float(String, f64),
}

/// One histogram row.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramRow {
    pub name: String,
    pub count: u64,
    pub mean: f64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
}

/// A renderable roll-up of a [`Trace`].
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    pub spans: Vec<SpanTotal>,
    /// Per-track roll-ups in `Trace::tracks()` order.
    pub track_totals: Vec<TrackTotal>,
    pub counters: Vec<CounterTotal>,
    pub histograms: Vec<HistogramRow>,
    pub tracks: usize,
    pub events: usize,
}

/// Tracks rendered in the Display table before eliding the long tail.
const DISPLAY_TRACKS: usize = 12;

/// Sum of top-level span durations: a span is top-level when it starts at
/// or after the end of the previous top-level span (events are recorded in
/// start order, so nested spans fall inside the running frontier).
fn top_level_time(events: &[crate::Event]) -> u64 {
    let mut total = 0u64;
    let mut frontier = 0u64;
    let mut first = true;
    for ev in events {
        if ev.kind != EventKind::Span {
            continue;
        }
        if first || ev.ts >= frontier {
            total += ev.dur;
            frontier = ev.ts.saturating_add(ev.dur);
            first = false;
        }
    }
    total
}

impl TraceSummary {
    pub fn of(trace: &Trace) -> Self {
        let mut by_name: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        let mut track_totals: Vec<TrackTotal> = Vec::new();
        for (track, events) in trace.tracks() {
            for ev in events {
                if ev.kind == EventKind::Span {
                    let slot = by_name.entry(&ev.name).or_insert((0, 0));
                    slot.0 += 1;
                    slot.1 += ev.dur;
                }
            }
            let self_time = top_level_time(events);
            track_totals.push(TrackTotal {
                name: track.to_owned(),
                self_time,
                total_time: self_time,
            });
        }
        // Roll child-track totals into their nearest existing ancestor
        // (`a/b/c` rolls into `a/b` if present, else `a`). Processing in
        // descending segment depth propagates bottom-up in one pass.
        let index: BTreeMap<String, usize> = track_totals
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.clone(), i))
            .collect();
        let mut order: Vec<usize> = (0..track_totals.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(track_totals[i].name.matches('/').count()));
        for i in order {
            let name = track_totals[i].name.clone();
            let mut prefix = name.as_str();
            while let Some(cut) = prefix.rfind('/') {
                prefix = &name[..cut];
                if let Some(&p) = index.get(prefix) {
                    let t = track_totals[i].total_time;
                    track_totals[p].total_time += t;
                    break;
                }
            }
        }
        let spans = by_name
            .into_iter()
            .map(|(name, (spans, virtual_time))| SpanTotal {
                name: name.to_owned(),
                spans,
                virtual_time,
            })
            .collect();
        let mut counters: Vec<CounterTotal> = trace
            .counters()
            .map(|(n, v)| CounterTotal::Int(n.to_owned(), v))
            .collect();
        counters.extend(
            trace
                .fcounters()
                .map(|(n, v)| CounterTotal::Float(n.to_owned(), v)),
        );
        let histograms = trace
            .histograms()
            .map(|(n, h): (&str, &Histogram)| HistogramRow {
                name: n.to_owned(),
                count: h.count(),
                mean: h.mean(),
                p50: h.quantile(0.5),
                p90: h.quantile(0.9),
                p99: h.quantile(0.99),
                max: h.max(),
            })
            .collect();
        TraceSummary {
            spans,
            track_totals,
            counters,
            histograms,
            tracks: trace.tracks().count(),
            events: trace.event_count(),
        }
    }

    /// Total virtual time attributed to spans whose name starts with `prefix`.
    pub fn virtual_time_for(&self, prefix: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name.starts_with(prefix))
            .map(|s| s.virtual_time)
            .sum()
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "── trace summary: {} events on {} tracks ──",
            self.events, self.tracks
        )?;
        if !self.spans.is_empty() {
            writeln!(f, "{:<28} {:>8} {:>14}", "span", "count", "virtual time")?;
            for s in &self.spans {
                writeln!(f, "{:<28} {:>8} {:>14}", s.name, s.spans, s.virtual_time)?;
            }
        }
        let busy: Vec<&TrackTotal> = {
            let mut v: Vec<&TrackTotal> = self
                .track_totals
                .iter()
                .filter(|t| t.total_time > 0)
                .collect();
            v.sort_by(|a, b| {
                b.total_time
                    .cmp(&a.total_time)
                    .then_with(|| a.name.cmp(&b.name))
            });
            v
        };
        if !busy.is_empty() {
            writeln!(f, "{:<28} {:>12} {:>12}", "track", "self", "total")?;
            for t in busy.iter().take(DISPLAY_TRACKS) {
                writeln!(f, "{:<28} {:>12} {:>12}", t.name, t.self_time, t.total_time)?;
            }
            if busy.len() > DISPLAY_TRACKS {
                writeln!(f, "… (+{} more tracks)", busy.len() - DISPLAY_TRACKS)?;
            }
        }
        if !self.counters.is_empty() {
            writeln!(f, "{:<28} {:>23}", "counter", "total")?;
            for c in &self.counters {
                match c {
                    CounterTotal::Int(name, v) => writeln!(f, "{name:<28} {v:>23}")?,
                    CounterTotal::Float(name, v) => writeln!(f, "{name:<28} {v:>23.3}")?,
                }
            }
        }
        if !self.histograms.is_empty() {
            writeln!(
                f,
                "{:<28} {:>8} {:>12} {:>8} {:>8} {:>8} {:>10}",
                "histogram", "count", "mean", "p50", "p90", "p99", "max"
            )?;
            for h in &self.histograms {
                writeln!(
                    f,
                    "{:<28} {:>8} {:>12.2} {:>8} {:>8} {:>8} {:>10}",
                    h.name, h.count, h.mean, h.p50, h.p90, h.p99, h.max
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_aggregates_spans_across_tracks() {
        let mut child = Trace::enabled("c");
        child.span("phase/lbi", 0, 7);
        child.span("phase/vsa", 7, 2);
        let mut root = Trace::enabled("r");
        root.span("phase/lbi", 0, 3);
        root.instant("marker", 1);
        root.count("messages", 9);
        root.record("depth", 4);
        root.absorb(child);
        let s = TraceSummary::of(&root);
        assert_eq!(s.tracks, 2);
        assert_eq!(s.events, 4);
        let lbi = s.spans.iter().find(|x| x.name == "phase/lbi").unwrap();
        assert_eq!(lbi.spans, 2);
        assert_eq!(lbi.virtual_time, 10);
        assert_eq!(s.virtual_time_for("phase/"), 12);
        assert_eq!(s.counters.len(), 1);
        assert_eq!(s.histograms.len(), 1);
        let rendered = s.to_string();
        assert!(rendered.contains("phase/lbi"));
        assert!(rendered.contains("messages"));
    }

    #[test]
    fn track_rollups_use_top_level_time_and_name_hierarchy() {
        // "g" has a root span [0,100) with a nested child [10,40): only
        // the top-level 100 counts as g's self time. Child tracks "g/a"
        // and "g/b" roll their totals into g.
        let mut a = Trace::enabled("a");
        a.span("work", 0, 30);
        let mut b = Trace::enabled("b");
        b.span("work", 0, 20);
        b.span("late", 25, 5);
        let mut g = Trace::enabled("g");
        g.span("root", 0, 100);
        g.span("nested", 10, 30);
        g.absorb(a);
        g.absorb(b);
        let s = TraceSummary::of(&g);
        let by_name: BTreeMap<&str, &TrackTotal> = s
            .track_totals
            .iter()
            .map(|t| (t.name.as_str(), t))
            .collect();
        assert_eq!(by_name["g/a"].self_time, 30);
        assert_eq!(by_name["g/a"].total_time, 30);
        assert_eq!(by_name["g/b"].self_time, 25);
        assert_eq!(by_name["g"].self_time, 100);
        assert_eq!(by_name["g"].total_time, 155);
    }

    #[test]
    fn empty_trace_summary_renders() {
        let s = TraceSummary::of(&Trace::disabled());
        assert_eq!(s.events, 0);
        assert!(s.to_string().contains("0 events"));
    }

    #[test]
    fn display_snapshot() {
        let mut child = Trace::enabled("graph0");
        child.span("round/lbi", 0, 64);
        child.span("round/vsa", 64, 36);
        let mut root = Trace::enabled("fig");
        root.span("prepare", 0, 10);
        root.count("messages", 1234);
        for v in [1u64, 2, 3, 50, 70, 100] {
            root.record("hops", v);
        }
        root.absorb(child);
        let expected = "\
── trace summary: 3 events on 2 tracks ──
span                            count   virtual time
prepare                             1             10
round/lbi                           1             64
round/vsa                           1             36
track                                self        total
fig                                    10          110
fig/graph0                            100          100
counter                                        total
messages                                        1234
histogram                       count         mean      p50      p90      p99        max
hops                                6        37.67        2       64       64        100
";
        assert_eq!(TraceSummary::of(&root).to_string(), expected);
    }
}
