//! Deterministic structured tracing and metrics for the proxbal workspace.
//!
//! Every event is stamped with **virtual time** (DES ticks or protocol
//! rounds), never wall-clock, so a trace is a pure function of
//! `(seed, fault plan)` — byte-identical at any `--threads` setting. The
//! deterministic parallel sweep engine gives each job its own child
//! [`Trace`] and merges them back in index order ([`Trace::absorb`]), which
//! is what keeps the merged event stream stable under work stealing.
//!
//! A disabled collector ([`Trace::disabled`]) early-returns from every
//! recording call without allocating, so the instrumented hot paths keep
//! their PR 1/2 performance when tracing is off.
//!
//! Three kinds of data are collected:
//!
//! - **spans / instants** ([`Event`]) on named tracks, exported to a
//!   newline-JSON event log and a chrome://tracing `trace.json`;
//! - **counters** (`u64` and `f64`), merged additively across child traces;
//! - **histograms** ([`Histogram`]) with power-of-two buckets and optional
//!   per-observation weights (e.g. load moved per hop).

mod export;
mod hist;
pub mod ndjson;
mod summary;

pub use hist::Histogram;
pub use ndjson::{NdjsonError, ParsedEvent, ParsedHistogram, ParsedTrace};
pub use summary::{CounterTotal, HistogramRow, SpanTotal, TraceSummary};

use std::collections::BTreeMap;

/// Virtual-time stamp: DES ticks or protocol rounds, depending on the layer.
pub type VirtualTime = u64;

/// A typed event/span argument value.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_owned())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// Whether an [`Event`] covers an interval or a single point in time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// An interval `[ts, ts + dur)` of virtual time.
    Span,
    /// A point event at `ts` (`dur` is always 0).
    Instant,
}

/// One recorded span or instant on a track.
#[derive(Clone, Debug)]
pub struct Event {
    pub name: String,
    pub ts: VirtualTime,
    pub dur: VirtualTime,
    pub kind: EventKind,
    pub args: Vec<(&'static str, ArgValue)>,
}

/// A named sequence of events; exported as one chrome://tracing thread.
#[derive(Clone, Debug)]
pub(crate) struct Track {
    pub(crate) name: String,
    pub(crate) events: Vec<Event>,
}

/// The trace collector.
///
/// A `Trace` owns one track of its own (named by its label) plus any tracks
/// absorbed from child traces. Counters and histograms are global to the
/// trace and merge additively on [`Trace::absorb`].
#[derive(Clone, Debug, Default)]
pub struct Trace {
    enabled: bool,
    label: String,
    own: Vec<Event>,
    children: Vec<Track>,
    counters: BTreeMap<String, u64>,
    fcounters: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
}

impl Trace {
    /// A collector that records nothing; every method early-returns.
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// An enabled collector whose own track is named `label`.
    pub fn enabled(label: &str) -> Self {
        Trace {
            enabled: true,
            label: label.to_owned(),
            ..Trace::default()
        }
    }

    /// Enabled or disabled collector depending on `on` — the common shape at
    /// call sites that thread a parent's enablement into per-job children.
    pub fn new(on: bool, label: &str) -> Self {
        if on {
            Trace::enabled(label)
        } else {
            Trace::disabled()
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn label(&self) -> &str {
        &self.label
    }

    /// Rename this trace's own track (and the prefix applied on absorb).
    pub fn relabel(&mut self, label: &str) {
        if self.enabled {
            self.label = label.to_owned();
        }
    }

    /// Record a span `[ts, ts + dur)` of virtual time.
    #[inline]
    pub fn span(&mut self, name: &str, ts: VirtualTime, dur: VirtualTime) {
        self.span_args(name, ts, dur, &[]);
    }

    /// Record a span with arguments.
    pub fn span_args(
        &mut self,
        name: &str,
        ts: VirtualTime,
        dur: VirtualTime,
        args: &[(&'static str, ArgValue)],
    ) {
        if !self.enabled {
            return;
        }
        self.own.push(Event {
            name: name.to_owned(),
            ts,
            dur,
            kind: EventKind::Span,
            args: args.to_vec(),
        });
    }

    /// Record a point event at `ts`.
    #[inline]
    pub fn instant(&mut self, name: &str, ts: VirtualTime) {
        self.instant_args(name, ts, &[]);
    }

    /// Record a point event with arguments.
    pub fn instant_args(&mut self, name: &str, ts: VirtualTime, args: &[(&'static str, ArgValue)]) {
        if !self.enabled {
            return;
        }
        self.own.push(Event {
            name: name.to_owned(),
            ts,
            dur: 0,
            kind: EventKind::Instant,
            args: args.to_vec(),
        });
    }

    /// Add `n` to the integer counter `name`.
    #[inline]
    pub fn count(&mut self, name: &str, n: u64) {
        if !self.enabled {
            return;
        }
        *self.counters.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Add `x` to the floating-point counter `name`.
    #[inline]
    pub fn count_f64(&mut self, name: &str, x: f64) {
        if !self.enabled {
            return;
        }
        *self.fcounters.entry(name.to_owned()).or_insert(0.0) += x;
    }

    /// Record one observation of `value` in histogram `name`.
    #[inline]
    pub fn record(&mut self, name: &str, value: u64) {
        self.record_weighted(name, value, 1.0);
    }

    /// Record an observation of `value` carrying `weight` (e.g. load moved
    /// at hop-distance `value`).
    pub fn record_weighted(&mut self, name: &str, value: u64, weight: f64) {
        if !self.enabled {
            return;
        }
        self.hists
            .entry(name.to_owned())
            .or_default()
            .observe_weighted(value, weight);
    }

    /// Merge a child trace into this one.
    ///
    /// The child's tracks are appended in order (its own first, then its
    /// children), each prefixed with this trace's label so track names
    /// compose hierarchically (`figure_7/graph0/aware`). Counters and
    /// histograms merge additively. Call order defines output order, so
    /// callers must absorb children in a deterministic order (the parallel
    /// sweep engine absorbs in index order).
    pub fn absorb(&mut self, child: Trace) {
        if !self.enabled || !child.enabled {
            return;
        }
        let prefix = if self.label.is_empty() {
            String::new()
        } else {
            format!("{}/", self.label)
        };
        if !child.own.is_empty() {
            self.children.push(Track {
                name: format!("{prefix}{}", child.label),
                events: child.own,
            });
        }
        for t in child.children {
            self.children.push(Track {
                name: format!("{prefix}{}", t.name),
                events: t.events,
            });
        }
        for (k, v) in child.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in child.fcounters {
            *self.fcounters.entry(k).or_insert(0.0) += v;
        }
        for (k, v) in child.hists {
            self.hists.entry(k).or_default().merge(&v);
        }
    }

    /// Value of an integer counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of a floating-point counter (0.0 when absent).
    pub fn fcounter(&self, name: &str) -> f64 {
        self.fcounters.get(name).copied().unwrap_or(0.0)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// All integer counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All floating-point counters in name order.
    pub fn fcounters(&self) -> impl Iterator<Item = (&str, f64)> {
        self.fcounters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Non-empty tracks in export order: own track first, then absorbed
    /// children in absorb order. Yields `(track name, events)`.
    pub fn tracks(&self) -> impl Iterator<Item = (&str, &[Event])> {
        let own = if self.own.is_empty() {
            None
        } else {
            Some((self.label.as_str(), self.own.as_slice()))
        };
        own.into_iter().chain(
            self.children
                .iter()
                .map(|t| (t.name.as_str(), t.events.as_slice())),
        )
    }

    /// Total number of recorded events across all tracks.
    pub fn event_count(&self) -> usize {
        self.own.len() + self.children.iter().map(|t| t.events.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.span("phase/lbi", 0, 5);
        t.instant("x", 3);
        t.count("messages", 10);
        t.count_f64("moved", 1.5);
        t.record("depth", 4);
        let mut child = Trace::enabled("child");
        child.span("s", 0, 1);
        t.absorb(child);
        assert!(!t.is_enabled());
        assert_eq!(t.event_count(), 0);
        assert_eq!(t.counter("messages"), 0);
        assert_eq!(t.tracks().count(), 0);
        assert_eq!(t.to_ndjson(), Trace::disabled().to_ndjson());
    }

    #[test]
    fn absorbing_disabled_child_is_noop() {
        let mut t = Trace::enabled("root");
        t.span("a", 0, 1);
        let before = t.to_ndjson();
        t.absorb(Trace::disabled());
        assert_eq!(t.to_ndjson(), before);
    }

    #[test]
    fn counters_merge_additively() {
        let mut parent = Trace::enabled("p");
        parent.count("m", 2);
        parent.count_f64("load", 0.5);
        let mut child = Trace::enabled("c");
        child.count("m", 3);
        child.count("other", 7);
        child.count_f64("load", 1.25);
        parent.absorb(child);
        assert_eq!(parent.counter("m"), 5);
        assert_eq!(parent.counter("other"), 7);
        assert!((parent.fcounter("load") - 1.75).abs() < 1e-12);
    }

    #[test]
    fn track_names_compose_hierarchically() {
        let mut leaf = Trace::enabled("aware");
        leaf.span("phase/lbi", 0, 3);
        let mut mid = Trace::enabled("graph0");
        mid.instant("seeded", 0);
        mid.absorb(leaf);
        let mut root = Trace::enabled("figure_7");
        root.absorb(mid);
        let names: Vec<&str> = root.tracks().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["figure_7/graph0", "figure_7/graph0/aware"]);
    }

    #[test]
    fn histograms_merge_on_absorb() {
        let mut parent = Trace::enabled("p");
        parent.record("depth", 2);
        let mut child = Trace::enabled("c");
        child.record_weighted("depth", 8, 3.0);
        parent.absorb(child);
        let h = parent.histogram("depth").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 2);
        assert_eq!(h.max(), 8);
        assert!((h.weight() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn relabel_only_when_enabled() {
        let mut t = Trace::disabled();
        t.relabel("x");
        assert_eq!(t.label(), "");
        let mut t = Trace::enabled("a");
        t.relabel("b");
        assert_eq!(t.label(), "b");
    }
}
