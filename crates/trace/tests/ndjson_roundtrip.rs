//! Export → parse → identical event stream.
//!
//! The NDJSON reader must reconstruct exactly what the exporter wrote: every
//! span/instant (track, name, ts, dur, args) in file order, every counter,
//! every histogram row. Floats in the fixtures are non-integral on purpose:
//! JSON cannot carry the U64-vs-F64 distinction for integral values (an
//! `ArgValue::F64(2.0)` exports as `2` and parses back as `U64(2)`), and
//! that documented ambiguity is pinned by its own test below.

use proxbal_trace::{ArgValue, EventKind, ParsedTrace, Trace};

/// A trace exercising every exporter shape: nested absorbed tracks, all five
/// arg types, string escaping, u64 + f64 counters, weighted histograms.
fn rich_trace() -> Trace {
    let mut leaf = Trace::enabled("aware");
    leaf.span_args(
        "round/lbi",
        0,
        47,
        &[
            ("peers", ArgValue::U64(4096)),
            ("drift", ArgValue::F64(0.125)),
            ("delta", ArgValue::I64(-3)),
            ("balanced", ArgValue::Bool(true)),
            ("mode", ArgValue::Str("exact".into())),
        ],
    );
    leaf.instant_args(
        "kt/repair",
        12,
        &[("why", ArgValue::Str("a\"b\\c\n\t".into()))],
    );
    leaf.count("lbi_messages", 63);
    leaf.count_f64("vst_moved_load", 2.625);
    leaf.record_weighted("vst_load_per_hop", 3, 1.5);
    leaf.record("vst_load_per_hop", 0);
    leaf.record("vsa_assignment_depth", 9);

    let mut mid = Trace::enabled("epoch0");
    mid.span("engine/epoch", 0, 100);
    mid.absorb(leaf);

    let mut root = Trace::enabled("repro");
    root.instant("start", 0);
    root.count("des_retries", 7);
    root.absorb(mid);
    root
}

#[test]
fn roundtrip_events_counters_histograms() {
    let trace = rich_trace();
    let parsed = ParsedTrace::of(&trace).expect("exporter output must parse");

    assert_eq!(parsed.declared_tracks, trace.tracks().count());
    assert_eq!(parsed.declared_events, trace.event_count());
    assert_eq!(parsed.events.len(), trace.event_count());

    // Events come back in file order — track by track, in export order —
    // with every field intact.
    let mut expect = Vec::new();
    for (track, events) in trace.tracks() {
        for ev in events {
            expect.push((track, ev));
        }
    }
    for (got, (track, ev)) in parsed.events.iter().zip(&expect) {
        assert_eq!(got.track, *track);
        assert_eq!(got.name, ev.name);
        assert_eq!(got.kind, ev.kind);
        assert_eq!(got.ts, ev.ts);
        assert_eq!(
            got.dur,
            if ev.kind == EventKind::Span {
                ev.dur
            } else {
                0
            }
        );
        assert_eq!(got.args.len(), ev.args.len());
        for ((gk, gv), (ek, ev)) in got.args.iter().zip(&ev.args) {
            assert_eq!(gk, ek);
            assert_eq!(gv, ev);
        }
    }

    // Counters and histograms match the live trace exactly.
    let counters: Vec<(String, u64)> = trace.counters().map(|(k, v)| (k.to_owned(), v)).collect();
    assert_eq!(parsed.counters, counters);
    for (name, v) in trace.fcounters() {
        assert_eq!(parsed.fcounter(name), v);
    }
    for (name, h) in trace.histograms() {
        let row = parsed.histogram(name).expect("histogram row");
        assert_eq!(row.count, h.count());
        assert_eq!(row.min, h.min());
        assert_eq!(row.max, h.max());
        assert_eq!(row.weight, h.weight());
        assert_eq!(row.mean, h.mean());
        let buckets: Vec<(u64, f64)> = h.buckets().collect();
        assert_eq!(row.buckets, buckets);
    }
}

#[test]
fn reexport_of_parse_is_byte_identical() {
    // Strongest form of the round-trip: feed the parsed stream back through
    // a fresh Trace and compare NDJSON bytes. Valid because the fixture
    // avoids integral floats (the one documented lossy case).
    let original = rich_trace().to_ndjson();
    let parsed = ParsedTrace::parse(&original).unwrap();

    let mut rebuilt = Trace::enabled("");
    let mut current: Option<(String, Trace)> = None;
    for ev in &parsed.events {
        if current.as_ref().map(|(t, _)| t.as_str()) != Some(ev.track.as_str()) {
            if let Some((_, tr)) = current.take() {
                rebuilt.absorb(tr);
            }
            current = Some((ev.track.clone(), Trace::enabled(&ev.track)));
        }
        let (_, tr) = current.as_mut().unwrap();
        let args: Vec<(&'static str, ArgValue)> =
            ev.args.iter().map(|(k, v)| (leak(k), v.clone())).collect();
        match ev.kind {
            EventKind::Span => tr.span_args(&ev.name, ev.ts, ev.dur, &args),
            EventKind::Instant => tr.instant_args(&ev.name, ev.ts, &args),
        }
    }
    if let Some((_, tr)) = current.take() {
        rebuilt.absorb(tr);
    }
    for (name, v) in &parsed.counters {
        rebuilt.count(name, *v);
    }
    for (name, v) in &parsed.fcounters {
        rebuilt.count_f64(name, *v);
    }
    for row in &parsed.histograms {
        for &(lo, w) in &row.buckets {
            rebuilt.record_weighted(&row.name, lo, w);
        }
    }

    let reexported = rebuilt.to_ndjson();
    // Histogram rows lose exact observed values (only bucket lower bounds
    // survive), so compare the event/counter prefix byte-for-byte and the
    // histogram lines structurally.
    let orig_prefix: Vec<&str> = original
        .lines()
        .filter(|l| !l.contains("\"type\":\"histogram\""))
        .collect();
    let re_prefix: Vec<&str> = reexported
        .lines()
        .filter(|l| !l.contains("\"type\":\"histogram\""))
        .collect();
    assert_eq!(orig_prefix, re_prefix);

    let reparsed = ParsedTrace::parse(&reexported).unwrap();
    for (a, b) in parsed.histograms.iter().zip(&reparsed.histograms) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.count, b.count);
        assert_eq!(a.buckets, b.buckets);
        assert_eq!(a.weight, b.weight);
    }
}

#[test]
fn integral_float_ambiguity_is_the_only_loss() {
    // JSON renders F64(2.0) as `2`, indistinguishable from U64(2).
    let mut t = Trace::enabled("x");
    t.span_args("s", 0, 1, &[("v", ArgValue::F64(2.0))]);
    t.count_f64("whole", 5.0);
    let parsed = ParsedTrace::of(&t).unwrap();
    assert_eq!(parsed.events[0].args[0].1, ArgValue::U64(2));
    // The integral f64 counter lands in the integer table...
    assert_eq!(parsed.counter("whole"), 5);
    // ...but `any_counter` papers over the split.
    assert_eq!(parsed.any_counter("whole"), 5.0);
}

#[test]
fn parses_real_engine_style_lines() {
    let text = concat!(
        "{\"type\":\"meta\",\"format\":\"proxbal-trace\",\"version\":1,\"tracks\":1,\"events\":2}\n",
        "{\"type\":\"span\",\"track\":\"repro/epoch7\",\"name\":\"engine/epoch\",\"ts\":0,\"dur\":100,",
        "\"args\":{\"joins\":3,\"crashes\":1,\"heavy\":12,\"passes\":2}}\n",
        "{\"type\":\"instant\",\"track\":\"repro/epoch7\",\"name\":\"kt/stale\",\"ts\":55}\n",
        "{\"type\":\"counter\",\"name\":\"des_gave_up\",\"value\":0}\n",
        "{\"type\":\"histogram\",\"name\":\"vsa_assignment_depth\",\"count\":4,\"min\":1,\"max\":6,",
        "\"weight\":4,\"mean\":3.25,\"buckets\":[[1,2],[4,2]]}\n",
    );
    let p = ParsedTrace::parse(text).unwrap();
    assert_eq!(p.track_names(), vec!["repro/epoch7"]);
    assert_eq!(p.events[0].args[0], ("joins".to_owned(), ArgValue::U64(3)));
    assert_eq!(p.events[1].kind, EventKind::Instant);
    assert_eq!(p.counter("des_gave_up"), 0);
    let h = p.histogram("vsa_assignment_depth").unwrap();
    assert_eq!(h.buckets, vec![(1, 2.0), (4, 2.0)]);
}

/// Leak a small key string to satisfy the `&'static str` arg-key type; test
/// fixtures only.
fn leak(s: &str) -> &'static str {
    Box::leak(s.to_owned().into_boxed_str())
}
