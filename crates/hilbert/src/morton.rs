//! Z-order (Morton) curve — the classic bit-interleaving space-filling
//! curve, included as an ablation baseline for the Hilbert curve.
//!
//! Morton order is cheaper to compute but has strictly worse locality:
//! consecutive indices can jump across the whole space at power-of-two
//! boundaries, whereas consecutive Hilbert indices are always grid
//! neighbours. The `ablation_curves` experiment quantifies what that costs
//! the proximity-aware balancer.

use serde::{Deserialize, Serialize};

/// An m-dimensional Morton (Z-order) curve of order `b`: coordinates'
/// bits are interleaved most-significant first. Same interface shape as
/// [`crate::HilbertCurve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MortonCurve {
    dims: u32,
    order: u32,
}

impl MortonCurve {
    /// Creates a curve over `dims` dimensions with `order` bits per
    /// dimension (`dims · order ≤ 128`).
    pub fn new(dims: u32, order: u32) -> Self {
        assert!(dims >= 1);
        assert!((1..=32).contains(&order));
        assert!(
            dims.checked_mul(order).is_some_and(|bits| bits <= 128),
            "total index bits dims*order must be <= 128"
        );
        MortonCurve { dims, order }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// Bits per dimension.
    pub fn order(&self) -> u32 {
        self.order
    }

    /// Total index bits.
    pub fn index_bits(&self) -> u32 {
        self.dims * self.order
    }

    /// Largest valid coordinate (`2^order − 1`).
    pub fn max_coord(&self) -> u32 {
        if self.order == 32 {
            u32::MAX
        } else {
            (1u32 << self.order) - 1
        }
    }

    /// Interleaves coordinate bits into a Morton index.
    pub fn encode(&self, point: &[u32]) -> u128 {
        assert_eq!(point.len(), self.dims as usize, "dimension mismatch");
        let max = self.max_coord();
        assert!(point.iter().all(|&c| c <= max), "coordinate out of range");
        let mut out = 0u128;
        for j in (0..self.order).rev() {
            for &c in point {
                out = (out << 1) | u128::from((c >> j) & 1);
            }
        }
        out
    }

    /// Inverse of [`Self::encode`].
    pub fn decode(&self, index: u128) -> Vec<u32> {
        let bits = self.index_bits();
        if bits < 128 {
            assert!(index < (1u128 << bits), "index out of range");
        }
        let n = self.dims as usize;
        let mut x = vec![0u32; n];
        let mut bit = bits;
        for j in (0..self.order).rev() {
            for xi in x.iter_mut() {
                bit -= 1;
                *xi |= (((index >> bit) & 1) as u32) << j;
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HilbertCurve;

    #[test]
    fn morton_2d_order1_is_z_pattern() {
        let c = MortonCurve::new(2, 1);
        assert_eq!(c.decode(0), vec![0, 0]);
        assert_eq!(c.decode(1), vec![0, 1]);
        assert_eq!(c.decode(2), vec![1, 0]);
        assert_eq!(c.decode(3), vec![1, 1]);
    }

    #[test]
    fn morton_roundtrip() {
        let c = MortonCurve::new(3, 4);
        for h in (0..(1u128 << 12)).step_by(37) {
            assert_eq!(c.encode(&c.decode(h)), h);
        }
    }

    #[test]
    fn morton_is_a_bijection_2d_order3() {
        let c = MortonCurve::new(2, 3);
        let mut seen = std::collections::HashSet::new();
        for h in 0..64u128 {
            assert!(seen.insert(c.decode(h)));
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn morton_has_worse_step_locality_than_hilbert() {
        // Average L1 distance between consecutive curve points: exactly 1
        // for Hilbert, strictly larger for Morton (jumps at block edges).
        let dims = 2;
        let order = 5;
        let hilbert = HilbertCurve::new(dims, order);
        let morton = MortonCurve::new(dims, order);
        let total: u128 = 1 << (dims * order);
        let mut h_sum = 0u64;
        let mut m_sum = 0u64;
        let l1 = |a: &[u32], b: &[u32]| -> u64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| u64::from(x.abs_diff(*y)))
                .sum()
        };
        let mut hp = hilbert.decode(0);
        let mut mp = morton.decode(0);
        for i in 1..total {
            let hn = hilbert.decode(i);
            let mn = morton.decode(i);
            h_sum += l1(&hp, &hn);
            m_sum += l1(&mp, &mn);
            hp = hn;
            mp = mn;
        }
        assert_eq!(h_sum, (total - 1) as u64, "Hilbert steps are unit moves");
        assert!(
            m_sum > h_sum * 3 / 2,
            "Morton average step should be clearly worse: {m_sum} vs {h_sum}"
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn morton_encode_rejects_wrong_dims() {
        MortonCurve::new(3, 2).encode(&[0, 1]);
    }
}
