use crate::{HilbertCurve, MortonCurve};
use proxbal_id::Id;
use serde::{Deserialize, Serialize};

/// Which space-filling curve orders the grid cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CurveKind {
    /// Hilbert curve — unit-step locality; the paper's choice (§4.2.1).
    Hilbert,
    /// Z-order (Morton) curve — cheaper, worse locality; ablation baseline.
    Morton,
}

/// Internal curve dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
enum AnyCurve {
    Hilbert(HilbertCurve),
    Morton(MortonCurve),
}

impl AnyCurve {
    fn new(kind: CurveKind, dims: u32, order: u32) -> Self {
        match kind {
            CurveKind::Hilbert => AnyCurve::Hilbert(HilbertCurve::new(dims, order)),
            CurveKind::Morton => AnyCurve::Morton(MortonCurve::new(dims, order)),
        }
    }

    fn encode(&self, point: &[u32]) -> u128 {
        match self {
            AnyCurve::Hilbert(c) => c.encode(point),
            AnyCurve::Morton(c) => c.encode(point),
        }
    }

    fn index_bits(&self) -> u32 {
        match self {
            AnyCurve::Hilbert(c) => c.index_bits(),
            AnyCurve::Morton(c) => c.index_bits(),
        }
    }

    fn max_coord(&self) -> u32 {
        match self {
            AnyCurve::Hilbert(c) => c.max_coord(),
            AnyCurve::Morton(c) => c.max_coord(),
        }
    }
}

/// Maps raw landmark vectors (distances in latency units) onto the 32-bit
/// identifier ring via grid quantization + Hilbert encoding (§4.2.1).
///
/// The paper "divides the m-dimensional landmark space into 2^n grids of
/// equal size (where n controls the number of grids used to divide the
/// landmark space)" and numbers grids along a Hilbert curve; a node's
/// **Hilbert number** is the grid number containing its landmark vector.
/// Here `n = m·b` where `b` is bits per dimension: smaller `b` means coarser
/// grids and a higher chance that two physically close nodes share a Hilbert
/// number — exactly the paper's "a smaller n increases the likelihood that
/// two physically close nodes have the same Hilbert number".
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LandmarkMapper {
    curve: AnyCurve,
    /// Upper bound (inclusive) of the coordinate range used for scaling;
    /// distances above it saturate into the last grid cell.
    scale_max: u32,
    /// Subtract the minimum coordinate from every coordinate before
    /// quantizing (see [`LandmarkMapper::centered`]).
    center: bool,
    /// Per-dimension `(lo, hi)` ranges for min–max scaling (see
    /// [`LandmarkMapper::with_ranges`]). Overrides `scale_max` when set.
    ranges: Option<Vec<(u32, u32)>>,
}

impl LandmarkMapper {
    /// Creates a mapper for `dims`-dimensional landmark vectors with
    /// `bits_per_dim` grid bits per dimension, scaling raw distances from
    /// `[0, scale_max]` onto the grid. `scale_max` is typically the network
    /// diameter (or the maximum observed landmark distance).
    pub fn new(dims: u32, bits_per_dim: u32, scale_max: u32) -> Self {
        assert!(scale_max > 0, "scale_max must be positive");
        LandmarkMapper {
            curve: AnyCurve::new(CurveKind::Hilbert, dims, bits_per_dim),
            scale_max,
            center: false,
            ranges: None,
        }
    }

    /// Like [`LandmarkMapper::new`], but each dimension `d` is min–max
    /// scaled from its own observed range `ranges[d] = (lo, hi)` onto the
    /// full grid resolution (values outside the range saturate).
    ///
    /// Raw landmark distances in a hop-count model occupy a narrow band
    /// (every coordinate is dominated by a few interdomain hops), so plain
    /// global scaling packs the whole population into a handful of grid
    /// cells — and therefore onto a handful of ring arcs, destroying the
    /// rendezvous granularity the VSA sweep needs. Stretching each
    /// dimension to its observed range restores full grid resolution. See
    /// DESIGN.md.
    pub fn with_ranges(dims: u32, bits_per_dim: u32, ranges: Vec<(u32, u32)>) -> Self {
        assert_eq!(ranges.len(), dims as usize, "one range per dimension");
        assert!(ranges.iter().all(|&(lo, hi)| lo <= hi));
        LandmarkMapper {
            curve: AnyCurve::new(CurveKind::Hilbert, dims, bits_per_dim),
            scale_max: 1,
            center: false,
            ranges: Some(ranges),
        }
    }

    /// Switches the mapper to a different space-filling curve (same
    /// dimensions and order). Used by the curve ablation.
    pub fn with_curve(mut self, kind: CurveKind) -> Self {
        let (dims, order) = match self.curve {
            AnyCurve::Hilbert(c) => (c.dims(), c.order()),
            AnyCurve::Morton(c) => (c.dims(), c.order()),
        };
        self.curve = AnyCurve::new(kind, dims, order);
        self
    }

    /// Like [`LandmarkMapper::new`], but each vector is first **centered**:
    /// its minimum coordinate is subtracted from every coordinate.
    ///
    /// With integer hop-count distances, a node's distance to each landmark
    /// is (distance to its domain gateway) + (gateway's distance to the
    /// landmark): the first term is a common-mode offset that shifts all
    /// coordinates *diagonally*, and diagonal neighbours can land far apart
    /// on a Hilbert curve, scattering one LAN's nodes over many grid cells.
    /// Real RTT measurements have negligible LAN components, so centering
    /// restores the behaviour the paper's landmark clustering presumes
    /// ("nodes in a stub domain have close (or even same) Hilbert
    /// numbers"). See DESIGN.md.
    pub fn centered(dims: u32, bits_per_dim: u32, scale_max: u32) -> Self {
        LandmarkMapper {
            center: true,
            ..Self::new(dims, bits_per_dim, scale_max)
        }
    }

    /// Total number of grid cells, `2^{m·b}` (saturating at `u128::MAX`).
    pub fn grid_count(&self) -> u128 {
        let bits = self.curve.index_bits();
        if bits >= 128 {
            u128::MAX
        } else {
            1u128 << bits
        }
    }

    /// Quantizes one raw coordinate into `0 ..= 2^b − 1`.
    fn quantize(&self, raw: u32) -> u32 {
        let cells = u64::from(self.curve.max_coord()) + 1;
        let raw = raw.min(self.scale_max);
        // floor(raw * cells / (scale_max + 1)) — uniform bins over the range.
        ((u64::from(raw) * cells) / (u64::from(self.scale_max) + 1)) as u32
    }

    /// The grid cell of a landmark vector.
    pub fn grid_cell(&self, landmark_vector: &[u32]) -> Vec<u32> {
        if let Some(ref ranges) = self.ranges {
            assert_eq!(landmark_vector.len(), ranges.len(), "dimension mismatch");
            let cells = u64::from(self.curve.max_coord()) + 1;
            return landmark_vector
                .iter()
                .zip(ranges)
                .map(|(&d, &(lo, hi))| {
                    let d = d.clamp(lo, hi) - lo;
                    let span = u64::from(hi - lo) + 1;
                    ((u64::from(d) * cells) / span) as u32
                })
                .collect();
        }
        if self.center {
            let min = landmark_vector.iter().copied().min().unwrap_or(0);
            landmark_vector
                .iter()
                .map(|&d| self.quantize(d - min))
                .collect()
        } else {
            landmark_vector.iter().map(|&d| self.quantize(d)).collect()
        }
    }

    /// The Hilbert number of a landmark vector: the index of its grid cell
    /// along the space-filling curve.
    pub fn hilbert_number(&self, landmark_vector: &[u32]) -> u128 {
        self.curve.encode(&self.grid_cell(landmark_vector))
    }

    /// Maps a landmark vector all the way to a 32-bit DHT key: the Hilbert
    /// number is left-aligned into the ring so that curve locality becomes
    /// ring locality.
    ///
    /// If the curve has more than 32 index bits, the *most significant* 32
    /// are kept (nearby curve points still map to nearby ring points); with
    /// fewer bits, the number is shifted up so cells partition the ring into
    /// equal arcs.
    pub fn dht_key(&self, landmark_vector: &[u32]) -> Id {
        let h = self.hilbert_number(landmark_vector);
        let bits = self.curve.index_bits();
        let key = if bits > 32 {
            (h >> (bits - 32)) as u32
        } else {
            (h as u32) << (32 - bits)
        };
        Id::new(key)
    }
}
