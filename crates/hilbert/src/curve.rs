use serde::{Deserialize, Serialize};

/// An m-dimensional Hilbert curve of order `b`: a bijection between the grid
/// `{0, …, 2^b − 1}^m` and the index range `{0, …, 2^{m·b} − 1}` in which
/// consecutive indices are always grid neighbours (L1 distance 1).
///
/// Implementation: John Skilling, "Programming the Hilbert curve", *AIP
/// Conference Proceedings* 707 (2004) — the classic in-place transpose
/// formulation, generalized to any dimension. The index is carried as `u128`,
/// so `m·b ≤ 128` (ample for the paper's 15-dimensional landmark space at 2–8
/// bits per dimension).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HilbertCurve {
    dims: u32,
    order: u32,
}

impl HilbertCurve {
    /// Creates a curve over `dims` dimensions with `order` bits per
    /// dimension. Panics unless `1 ≤ dims`, `1 ≤ order ≤ 32` and
    /// `dims · order ≤ 128`.
    pub fn new(dims: u32, order: u32) -> Self {
        assert!(dims >= 1, "need at least one dimension");
        assert!((1..=32).contains(&order), "order must be in 1..=32");
        assert!(
            dims.checked_mul(order).is_some_and(|bits| bits <= 128),
            "total index bits dims*order must be <= 128"
        );
        HilbertCurve { dims, order }
    }

    /// Number of dimensions `m`.
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// Bits per dimension `b`.
    pub fn order(&self) -> u32 {
        self.order
    }

    /// Total bits in a curve index (`m·b`).
    pub fn index_bits(&self) -> u32 {
        self.dims * self.order
    }

    /// Largest valid coordinate value (`2^b − 1`).
    pub fn max_coord(&self) -> u32 {
        if self.order == 32 {
            u32::MAX
        } else {
            (1u32 << self.order) - 1
        }
    }

    /// Maps grid coordinates to the Hilbert index.
    ///
    /// Panics if `point.len() != dims` or any coordinate exceeds
    /// [`Self::max_coord`].
    pub fn encode(&self, point: &[u32]) -> u128 {
        assert_eq!(point.len(), self.dims as usize, "dimension mismatch");
        let max = self.max_coord();
        assert!(
            point.iter().all(|&c| c <= max),
            "coordinate exceeds 2^order - 1"
        );
        let mut x = point.to_vec();
        self.axes_to_transpose(&mut x);
        self.interleave(&x)
    }

    /// Maps a Hilbert index back to grid coordinates (inverse of
    /// [`Self::encode`]).
    ///
    /// Panics if `index` has bits above `m·b`.
    pub fn decode(&self, index: u128) -> Vec<u32> {
        let bits = self.index_bits();
        if bits < 128 {
            assert!(index < (1u128 << bits), "index out of range");
        }
        let mut x = self.deinterleave(index);
        self.transpose_to_axes(&mut x);
        x
    }

    /// Skilling's AxesToTranspose: converts coordinates in place into the
    /// "transpose" representation of the Hilbert index.
    fn axes_to_transpose(&self, x: &mut [u32]) {
        let n = x.len();
        let m = 1u32 << (self.order - 1);

        // Inverse undo.
        let mut q = m;
        while q > 1 {
            let p = q - 1;
            for i in 0..n {
                if x[i] & q != 0 {
                    x[0] ^= p; // invert
                } else {
                    let t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t; // exchange
                }
            }
            q >>= 1;
        }

        // Gray encode.
        for i in 1..n {
            x[i] ^= x[i - 1];
        }
        let mut t = 0u32;
        let mut q = m;
        while q > 1 {
            if x[n - 1] & q != 0 {
                t ^= q - 1;
            }
            q >>= 1;
        }
        for v in x.iter_mut() {
            *v ^= t;
        }
    }

    /// Skilling's TransposeToAxes (inverse of [`Self::axes_to_transpose`]).
    fn transpose_to_axes(&self, x: &mut [u32]) {
        let n = x.len();
        let m = 2u64 << (self.order - 1); // 2^order as u64 to allow order=32

        // Gray decode by H ^ (H/2).
        let mut t = x[n - 1] >> 1;
        for i in (1..n).rev() {
            x[i] ^= x[i - 1];
        }
        x[0] ^= t;

        // Undo excess work.
        let mut q = 2u64;
        while q != m {
            let p = (q - 1) as u32;
            let qq = q as u32;
            for i in (0..n).rev() {
                if x[i] & qq != 0 {
                    x[0] ^= p; // invert
                } else {
                    t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t; // exchange
                }
            }
            q <<= 1;
        }
    }

    /// Packs the transpose form into a single index: bit plane `j` (from most
    /// significant) contributes bits of `x[0], x[1], …` in order.
    fn interleave(&self, x: &[u32]) -> u128 {
        let mut out = 0u128;
        for j in (0..self.order).rev() {
            for &xi in x {
                out = (out << 1) | u128::from((xi >> j) & 1);
            }
        }
        out
    }

    /// Inverse of [`Self::interleave`].
    fn deinterleave(&self, index: u128) -> Vec<u32> {
        let n = self.dims as usize;
        let mut x = vec![0u32; n];
        let mut bit = self.index_bits();
        for j in (0..self.order).rev() {
            for xi in x.iter_mut().take(n) {
                bit -= 1;
                *xi |= (((index >> bit) & 1) as u32) << j;
            }
        }
        x
    }
}
