use crate::{HilbertCurve, LandmarkMapper};
use proptest::prelude::*;
use std::collections::HashSet;

#[test]
fn order1_dim2_is_the_classic_4_cell_curve() {
    // The order-1, 2-D Hilbert curve visits (0,0) (0,1) (1,1) (1,0).
    let c = HilbertCurve::new(2, 1);
    assert_eq!(c.decode(0), vec![0, 0]);
    assert_eq!(c.decode(1), vec![0, 1]);
    assert_eq!(c.decode(2), vec![1, 1]);
    assert_eq!(c.decode(3), vec![1, 0]);
    for h in 0..4u128 {
        assert_eq!(c.encode(&c.decode(h)), h);
    }
}

#[test]
fn curve_is_a_bijection_2d_order3() {
    let c = HilbertCurve::new(2, 3); // 64 cells
    let mut seen = HashSet::new();
    for h in 0..64u128 {
        let p = c.decode(h);
        assert!(p.iter().all(|&v| v < 8));
        assert!(seen.insert(p.clone()), "duplicate point {p:?}");
        assert_eq!(c.encode(&p), h, "roundtrip failed at {h}");
    }
    assert_eq!(seen.len(), 64);
}

#[test]
fn consecutive_indices_are_grid_neighbors_2d() {
    let c = HilbertCurve::new(2, 4); // 256 cells
    let mut prev = c.decode(0);
    for h in 1..256u128 {
        let cur = c.decode(h);
        let l1: u32 = prev.iter().zip(&cur).map(|(a, b)| a.abs_diff(*b)).sum();
        assert_eq!(l1, 1, "step {h}: {prev:?} -> {cur:?}");
        prev = cur;
    }
}

#[test]
fn consecutive_indices_are_grid_neighbors_3d_and_5d() {
    for (dims, order) in [(3u32, 3u32), (5, 2)] {
        let c = HilbertCurve::new(dims, order);
        let total: u128 = 1 << c.index_bits();
        let mut prev = c.decode(0);
        for h in 1..total {
            let cur = c.decode(h);
            let l1: u32 = prev.iter().zip(&cur).map(|(a, b)| a.abs_diff(*b)).sum();
            assert_eq!(l1, 1, "dims={dims} order={order} step {h}");
            prev = cur;
        }
    }
}

#[test]
fn paper_configuration_15_dims() {
    // The paper's landmark space: m = 15 landmarks. With 2 bits per
    // dimension the curve index has 30 bits (2^30 grids).
    let c = HilbertCurve::new(15, 2);
    assert_eq!(c.index_bits(), 30);
    let p = vec![1u32; 15];
    let h = c.encode(&p);
    assert_eq!(c.decode(h), p);
}

#[test]
fn one_dimension_is_identity() {
    let c = HilbertCurve::new(1, 8);
    for v in [0u32, 1, 17, 200, 255] {
        assert_eq!(c.encode(&[v]), u128::from(v));
        assert_eq!(c.decode(u128::from(v)), vec![v]);
    }
}

#[test]
#[should_panic(expected = "dimension mismatch")]
fn encode_rejects_wrong_dims() {
    HilbertCurve::new(3, 2).encode(&[0, 1]);
}

#[test]
#[should_panic(expected = "coordinate exceeds")]
fn encode_rejects_out_of_range_coord() {
    HilbertCurve::new(2, 2).encode(&[4, 0]);
}

#[test]
#[should_panic(expected = "index out of range")]
fn decode_rejects_out_of_range_index() {
    HilbertCurve::new(2, 2).decode(16);
}

#[test]
fn mapper_quantizes_uniformly() {
    let m = LandmarkMapper::new(1, 2, 99); // 4 bins over 0..=99
    assert_eq!(m.grid_cell(&[0]), vec![0]);
    assert_eq!(m.grid_cell(&[24]), vec![0]);
    assert_eq!(m.grid_cell(&[25]), vec![1]);
    assert_eq!(m.grid_cell(&[99]), vec![3]);
    // Saturation above scale_max.
    assert_eq!(m.grid_cell(&[5000]), vec![3]);
}

#[test]
fn mapper_identical_vectors_same_key() {
    let m = LandmarkMapper::new(15, 2, 64);
    let v = vec![3u32, 9, 27, 5, 1, 0, 44, 12, 7, 30, 2, 18, 21, 9, 9];
    assert_eq!(m.dht_key(&v), m.dht_key(&v.clone()));
    // Nearby vector in the same grid cells → same key.
    let mut w = v.clone();
    w[0] += 1; // 3 and 4 quantize to the same of 4 bins over 0..=64
    assert_eq!(m.grid_cell(&v)[0], m.grid_cell(&w)[0]);
    assert_eq!(m.dht_key(&v), m.dht_key(&w));
}

#[test]
fn mapper_close_vectors_close_keys() {
    // Statistical locality check: pairs of similar landmark vectors should
    // get closer DHT keys (ring distance) than random pairs, on average.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(11);
    let m = LandmarkMapper::new(8, 3, 100);

    let ring_dist =
        |a: proxbal_id::Id, b: proxbal_id::Id| -> u64 { a.distance_to(b).min(b.distance_to(a)) };

    let mut close_sum = 0u128;
    let mut far_sum = 0u128;
    let trials = 300;
    for _ in 0..trials {
        let v: Vec<u32> = (0..8).map(|_| rng.gen_range(0..=100)).collect();
        // Perturb each coordinate by at most 3 units.
        let close: Vec<u32> = v
            .iter()
            .map(|&x| {
                let delta = rng.gen_range(0..=3);
                if rng.gen() {
                    x.saturating_add(delta).min(100)
                } else {
                    x.saturating_sub(delta)
                }
            })
            .collect();
        let far: Vec<u32> = (0..8).map(|_| rng.gen_range(0..=100)).collect();
        close_sum += u128::from(ring_dist(m.dht_key(&v), m.dht_key(&close)));
        far_sum += u128::from(ring_dist(m.dht_key(&v), m.dht_key(&far)));
    }
    assert!(
        close_sum * 2 < far_sum,
        "expected perturbation distance ({close_sum}) well below random distance ({far_sum})"
    );
}

#[test]
fn mapper_key_alignment_under_and_over_32_bits() {
    // 15 dims × 2 bits = 30 bits < 32: keys are multiples of 4.
    let m = LandmarkMapper::new(15, 2, 10);
    let key = m.dht_key(&[1u32; 15]).raw();
    assert_eq!(key % 4, 0);
    // 15 dims × 4 bits = 60 bits > 32: top 32 bits kept, still valid keys.
    let m2 = LandmarkMapper::new(15, 4, 10);
    let _ = m2.dht_key(&[7u32; 15]);
}

proptest! {
    #[test]
    fn prop_roundtrip_various_dims(
        dims in 1u32..8,
        order in 1u32..5,
        seed: u64,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let c = HilbertCurve::new(dims, order);
        let mut rng = StdRng::seed_from_u64(seed);
        let p: Vec<u32> = (0..dims).map(|_| rng.gen_range(0..=c.max_coord())).collect();
        prop_assert_eq!(c.decode(c.encode(&p)), p);
    }

    #[test]
    fn prop_roundtrip_from_index(
        dims in 1u32..6,
        order in 1u32..4,
        raw: u128,
    ) {
        let c = HilbertCurve::new(dims, order);
        let bits = c.index_bits();
        let h = if bits >= 128 { raw } else { raw & ((1u128 << bits) - 1) };
        prop_assert_eq!(c.encode(&c.decode(h)), h);
    }

    #[test]
    fn prop_unit_steps_random_windows(
        dims in 2u32..7,
        order in 2u32..4,
        start_seed: u64,
    ) {
        let c = HilbertCurve::new(dims, order);
        let bits = c.index_bits();
        let total: u128 = 1 << bits;
        let start = (u128::from(start_seed) * 2654435761) % total.saturating_sub(16).max(1);
        let mut prev = c.decode(start);
        for h in start + 1..(start + 16).min(total) {
            let cur = c.decode(h);
            let l1: u32 = prev.iter().zip(&cur).map(|(a, b)| a.abs_diff(*b)).sum();
            prop_assert_eq!(l1, 1);
            prev = cur;
        }
    }

    #[test]
    fn prop_quantize_monotone(scale in 1u32..1000, a: u32, b: u32) {
        let m = LandmarkMapper::new(1, 3, scale);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(m.grid_cell(&[lo])[0] <= m.grid_cell(&[hi])[0]);
    }
}

#[test]
fn mapper_with_ranges_uses_full_resolution() {
    // Values concentrated in [100, 131]: global scaling to 0..=1000 wastes
    // almost all bins; per-dim ranges spread them over the full grid.
    let global = LandmarkMapper::new(2, 4, 1000);
    let ranged = LandmarkMapper::with_ranges(2, 4, vec![(100, 131), (100, 131)]);
    let mut global_cells = std::collections::HashSet::new();
    let mut ranged_cells = std::collections::HashSet::new();
    for a in (100..=131).step_by(2) {
        for b in (100..=131).step_by(2) {
            global_cells.insert(global.grid_cell(&[a, b]));
            ranged_cells.insert(ranged.grid_cell(&[a, b]));
        }
    }
    assert!(
        global_cells.len() <= 4,
        "global scaling nearly collapses the band: {} cells",
        global_cells.len()
    );
    assert!(
        ranged_cells.len() > 100,
        "per-dim scaling spreads: {} cells",
        ranged_cells.len()
    );
}

#[test]
fn mapper_with_ranges_clamps_out_of_range() {
    let m = LandmarkMapper::with_ranges(1, 3, vec![(10, 17)]);
    assert_eq!(m.grid_cell(&[5]), vec![0]); // below range
    assert_eq!(m.grid_cell(&[10]), vec![0]);
    assert_eq!(m.grid_cell(&[17]), vec![7]);
    assert_eq!(m.grid_cell(&[1000]), vec![7]); // above range
}

#[test]
fn mapper_degenerate_range_is_single_bin() {
    let m = LandmarkMapper::with_ranges(2, 4, vec![(5, 5), (0, 100)]);
    assert_eq!(m.grid_cell(&[5, 50])[0], 0);
    assert_eq!(m.grid_cell(&[7, 50])[0], 0);
}

#[test]
fn mapper_curve_kinds_differ_but_cells_agree() {
    use crate::CurveKind;
    let h = LandmarkMapper::with_ranges(2, 4, vec![(0, 100), (0, 100)]);
    let m = h.clone().with_curve(CurveKind::Morton);
    let v = [42u32, 77];
    assert_eq!(h.grid_cell(&v), m.grid_cell(&v), "quantization identical");
    // Indices generally differ (different curve orders).
    let mut differ = false;
    for a in (0..100).step_by(7) {
        for b in (0..100).step_by(11) {
            if h.hilbert_number(&[a, b]) != m.hilbert_number(&[a, b]) {
                differ = true;
            }
        }
    }
    assert!(differ, "Hilbert and Morton must order cells differently");
}

#[test]
fn mapper_centered_removes_common_offset() {
    let m = LandmarkMapper::centered(3, 4, 100);
    let base = [10u32, 40, 70];
    let shifted = [15u32, 45, 75]; // +5 on every coordinate
    assert_eq!(m.grid_cell(&base), m.grid_cell(&shifted));
    assert_eq!(m.dht_key(&base), m.dht_key(&shifted));
}
