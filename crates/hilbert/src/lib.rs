//! m-dimensional Hilbert space-filling curve and the landmark-vector →
//! DHT-key mapping of §4.2.1 of the paper.
//!
//! The paper maps each node's *landmark vector* (distances to 15 landmark
//! nodes) to a 1-dimensional **Hilbert number** used as a DHT key, so that
//! physically close nodes publish their load-balancing records at nearby
//! points of the identifier space. "Space filling curves such as the Hilbert
//! curve are a class of 'proximity preserving' mappings from an
//! m-dimensional space to a 1-dimensional space."
//!
//! * [`HilbertCurve`] — encode/decode between grid coordinates and curve
//!   index, for any dimension `m ≥ 1` and order `b ≥ 1` with `m·b ≤ 128`
//!   (Skilling's transpose algorithm).
//! * [`LandmarkMapper`] — quantizes raw landmark vectors into the `2^{m·b}`
//!   grid and produces a 32-bit ring [`Id`](proxbal_id::Id).

mod curve;
mod mapper;
mod morton;

pub use curve::HilbertCurve;
pub use mapper::{CurveKind, LandmarkMapper};
pub use morton::MortonCurve;

#[cfg(test)]
mod tests;
