//! The analyzer's determinism contract: gate evaluation is a pure
//! function of (gates, artifacts) — the rendered table and the
//! machine-readable report are byte-identical at any thread count.

use proxbal_analyze::{evaluate_gates, parse_gate_file, render_table, Run};
use proxbal_sim::engine::{EngineConfig, EngineReport, EpochSample};
use proxbal_trace::{ArgValue, Trace};

/// A small synthetic engine report: a heavy episode that drains, one
/// emergency, one repaired stale-link burst.
fn report() -> EngineReport {
    let base = EpochSample {
        epoch: 0,
        alive_peers: 64,
        gini: 0.2,
        heavy: 0,
        joins: 0,
        crashes: 0,
        stale_links: 0,
        repair_reattached: 0,
        repair_pruned: 0,
        maintenance_rounds: 1,
        balanced: false,
        emergency: false,
        balance_passes: 0,
        moved: 0.0,
        transfers: 0,
        messages: 10,
        des_messages: 10,
        des_retries: 0,
    };
    // Epochs: calm, heavy onset, emergency peak (stale links repaired),
    // rebalanced, a short relapse, rebalanced again.
    let rows = [
        (0.2, 0usize, false, false, 0usize, 0usize),
        (0.4, 5, false, false, 0, 0),
        (0.5, 8, false, true, 3, 3),
        (0.3, 0, true, false, 0, 0),
        (0.4, 2, false, false, 0, 0),
        (0.3, 0, true, false, 0, 0),
    ];
    let samples: Vec<EpochSample> = rows
        .iter()
        .enumerate()
        .map(
            |(i, &(gini, heavy, balanced, emergency, stale, fixed))| EpochSample {
                epoch: i,
                gini,
                heavy,
                balanced,
                emergency,
                stale_links: stale,
                repair_reattached: fixed,
                balance_passes: usize::from(balanced),
                moved: if balanced { 5.0 } else { 0.0 },
                transfers: if balanced { 2 } else { 0 },
                ..base
            },
        )
        .collect();
    EngineReport {
        config: EngineConfig::default(),
        samples,
        joins: 1,
        crashes: 1,
        stale_links: 3,
        balances: 2,
        emergencies: 1,
        total_moved: 10.0,
        total_transfers: 4,
        total_messages: 100,
    }
}

/// A synthetic trace with two epoch tracks carrying full LBI→VSA→VST
/// rounds plus counters, exported/reparsed through the real NDJSON path.
fn trace_text() -> String {
    let mut trace = Trace::enabled("det");
    for epoch in ["epoch3", "epoch5"] {
        let mut child = Trace::enabled(epoch);
        child.span_args("round/lbi", 0, 10, &[("peers", ArgValue::U64(64))]);
        child.span_args("round/aggregate", 0, 10, &[]);
        child.span_args("round/vsa", 10, 8, &[]);
        child.span_args("round/transfer", 18, 5, &[]);
        trace.absorb(child);
    }
    trace.count("des_gave_up", 0);
    trace.count("kt_reattached", 3);
    trace.to_ndjson()
}

const GATES: &str = r#"
[[gate]]
name = "drain"
source = "report"
kind = "sessionize"
where = "heavy > 0"
peak = "heavy"
metric = "p99_len"
op = "<="
threshold = 2

[[gate]]
name = "rebalance"
source = "report"
kind = "funnel"
steps = ["heavy > 0", "balanced and heavy == 0"]
window = 5
metric = "completion"
op = ">="
threshold = 1.0

[[gate]]
name = "no-triple-emergency"
source = "report"
kind = "sequence"
conds = ["emergency"]
pattern = "(?1)(?t<=1)(?1)(?t<=1)(?1)"
op = "=="
threshold = 0

[[gate]]
name = "rounds"
source = "trace"
kind = "funnel"
group_by = "track"
steps = ["name == 'round/lbi'", "name == 'round/vsa'", "name == 'round/transfer'"]
window = 100
metric = "completion"
op = ">="
threshold = 1.0

[[gate]]
name = "delivery"
source = "trace"
kind = "scalar"
expr = "des_gave_up"
op = "=="
threshold = 0
"#;

#[test]
fn gate_report_is_byte_identical_across_thread_counts() {
    let mut run = Run::default();
    run.load("r.json", &report().to_json_pretty()).unwrap();
    run.load("t.ndjson", &trace_text()).unwrap();
    let gates = parse_gate_file(GATES, "det.toml").unwrap();

    let baseline = evaluate_gates(&gates, &run.artifacts(), 1);
    assert!(
        baseline.iter().all(|r| r.pass),
        "fixture gates must pass:\n{}",
        render_table(&baseline)
    );
    let table1 = render_table(&baseline);
    let json1 = serde_json::to_string_pretty(&baseline).unwrap();
    for threads in [2, 8] {
        let results = evaluate_gates(&gates, &run.artifacts(), threads);
        assert_eq!(render_table(&results), table1, "table at {threads} threads");
        assert_eq!(
            serde_json::to_string_pretty(&results).unwrap(),
            json1,
            "JSON report at {threads} threads"
        );
    }
}

#[test]
fn summary_is_deterministic_and_names_episodes() {
    let mut run = Run::default();
    run.load("r.json", &report().to_json_pretty()).unwrap();
    run.load("t.ndjson", &trace_text()).unwrap();
    let a = run.summarize();
    let b = run.summarize();
    assert_eq!(a, b);
    assert!(a.contains("heavy episodes: 2"), "{a}");
    assert!(a.contains("epochs 1..=2"), "{a}");
    assert!(a.contains("emergency epochs: 2"), "{a}");
}

#[test]
fn tightened_threshold_turns_into_a_named_violation() {
    let mut run = Run::default();
    run.load("r.json", &report().to_json_pretty()).unwrap();
    let text = GATES.replace("threshold = 2", "threshold = 1");
    let gates = parse_gate_file(&text, "det.toml").unwrap();
    let report_gates: Vec<_> = gates
        .into_iter()
        .filter(|g| matches!(g.source, proxbal_analyze::gates::Source::Report))
        .collect();
    let results = evaluate_gates(&report_gates, &run.artifacts(), 4);
    let drain = results.iter().find(|r| r.name == "drain").unwrap();
    assert!(!drain.pass);
    let table = render_table(&results);
    assert!(table.contains("drain") && table.contains("FAIL"), "{table}");
}
