//! Behavioral analysis of proxbal runs: columnar views over the engine's
//! per-epoch [`EngineReport`] series and the trace NDJSON event log, three
//! behavioral primitives over them ([`sessionize`], [`window_funnel`],
//! [`sequence_match`]), and declarative threshold **gates** (`gates/*.toml`)
//! that turn behavioral properties — "heavy-load episodes drain within K
//! epochs", "every injected stale link is repaired in-epoch", "the
//! heavy→rebalanced funnel completes" — into CI failures, exactly the way
//! bench-metric drift already does.
//!
//! Everything here is deterministic: the artifacts are pure functions of
//! `(seed, config)`, the query language has no clocks or randomness, and
//! gate evaluation parallelizes as pure jobs merged in index order — so
//! `repro analyze` output is byte-identical at any `--threads` setting.
//!
//! The query-layer design follows the `sessionize`/`window_funnel`/
//! `sequence_match` behavioral-analytics family (ClickHouse/DuckDB);
//! DESIGN.md §6d specifies the gate-file format.

pub mod columns;
pub mod expr;
pub mod gates;
pub mod primitives;
pub mod toml;

pub use columns::{CounterTable, EpochTable, EventTable};
pub use expr::{Expr, Scope, Table, Val};
pub use gates::{
    evaluate_gates, parse_gate_file, render_table, Artifacts, CmpOp, Gate, GateResult,
};
pub use primitives::{
    parse_pattern, sequence_match, sessionize, window_funnel, FunnelOutcome, Session,
};

use proxbal_sim::engine::EngineReport;
use proxbal_trace::ParsedTrace;

/// The artifacts of one run, owned — what `repro analyze` loads from the
/// paths on its command line.
#[derive(Default)]
pub struct Run {
    pub report: Option<EngineReport>,
    pub trace: Option<ParsedTrace>,
}

impl Run {
    /// Adds one artifact by file content. `.ndjson` text parses as a trace
    /// event log; anything else parses as an `EngineReport` JSON document
    /// (bare or `repro engine --json` wrapper).
    pub fn load(&mut self, path: &str, text: &str) -> Result<(), String> {
        if path.ends_with(".ndjson") {
            if self.trace.is_some() {
                return Err(format!("{path}: a trace artifact was already loaded"));
            }
            self.trace = Some(ParsedTrace::parse(text).map_err(|e| format!("{path}: {e}"))?);
        } else {
            if self.report.is_some() {
                return Err(format!("{path}: a report artifact was already loaded"));
            }
            self.report =
                Some(EngineReport::from_json_str(text).map_err(|e| format!("{path}: {e}"))?);
        }
        Ok(())
    }

    /// Borrowed view for gate evaluation.
    pub fn artifacts(&self) -> Artifacts<'_> {
        Artifacts {
            report: self.report.as_ref(),
            trace: self.trace.as_ref(),
        }
    }

    /// The behavioral summary `repro analyze` prints when run without
    /// `--gates`: heavy-episode sessions, the emergency timeline, repair
    /// coverage from the report; track/event/counter shape from the trace.
    /// Deterministic text — safe to diff across thread counts.
    pub fn summarize(&self) -> String {
        let mut out = String::new();
        if let Some(report) = &self.report {
            let table = EpochTable::of(report);
            let epochs = report.samples.len();
            out.push_str(&format!(
                "report: {epochs} epoch(s), final heavy {}, mean gini {:.4}\n",
                report.final_heavy(),
                report.mean_gini()
            ));
            out.push_str(&format!(
                "  totals: joins {}, crashes {}, stale links {}, balances {} ({} emergency), moved {:.3}, transfers {}\n",
                report.joins,
                report.crashes,
                report.stale_links,
                report.balances,
                report.emergencies,
                report.total_moved,
                report.total_transfers
            ));
            let heavy_mask: Vec<bool> = report.samples.iter().map(|s| s.heavy > 0).collect();
            let peaks: Vec<f64> = report.samples.iter().map(|s| s.heavy as f64).collect();
            let sessions = sessionize(&heavy_mask, Some(&peaks));
            out.push_str(&format!("  heavy episodes: {}\n", sessions.len()));
            for s in &sessions {
                out.push_str(&format!(
                    "    epochs {}..={} (len {}, peak {} heavy)\n",
                    s.start, s.end, s.len, s.peak as u64
                ));
            }
            let emergencies: Vec<usize> = report
                .samples
                .iter()
                .filter(|s| s.emergency)
                .map(|s| s.epoch)
                .collect();
            out.push_str(&format!(
                "  emergency epochs: {}\n",
                if emergencies.is_empty() {
                    "none".to_owned()
                } else {
                    emergencies
                        .iter()
                        .map(|e| e.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                }
            ));
            let unrepaired =
                Expr::parse("count(stale_links > 0 and repair_reattached < stale_links)")
                    .expect("static expression")
                    .eval_scalar(&table)
                    .map(|v| v.as_num().unwrap_or(f64::NAN))
                    .unwrap_or(f64::NAN);
            out.push_str(&format!(
                "  epochs with unrepaired stale links: {unrepaired}\n"
            ));
        }
        if let Some(trace) = &self.trace {
            out.push_str(&format!(
                "trace: {} track(s), {} event(s), {} counter(s)\n",
                trace.track_names().len(),
                trace.events.len(),
                trace.counters.len() + trace.fcounters.len()
            ));
            for name in [
                "lbi_messages",
                "vst_transfers",
                "vst_moved_load",
                "kt_reattached",
                "des_retries",
                "des_gave_up",
            ] {
                out.push_str(&format!("  {name}: {}\n", trace.any_counter(name)));
            }
        }
        if out.is_empty() {
            out.push_str("no artifacts loaded\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_dispatches_on_extension_and_rejects_duplicates() {
        let mut run = Run::default();
        assert!(run.load("t.ndjson", "garbage").is_err());
        let trace_text =
            "{\"type\":\"meta\",\"format\":\"proxbal-trace\",\"version\":1,\"tracks\":0,\"events\":0}\n";
        run.load("t.ndjson", trace_text).unwrap();
        assert!(run.load("t2.ndjson", trace_text).is_err());
        assert!(run.load("r.json", "{}").is_err());
        assert!(run.summarize().starts_with("trace:"));
    }
}
