//! Declarative robustness gates: a query (one behavioral primitive or a
//! scalar expression), a metric, and a thresholded comparison with
//! tolerance — loaded from `gates/*.toml` and evaluated against a run's
//! artifacts. A gate violation is how a behavioral regression fails CI,
//! the same way bench-metric drift does.

use crate::columns::{CounterTable, EpochTable, EventTable};
use crate::expr::{Expr, Table};
use crate::primitives::{
    parse_pattern, sequence_match, sessionize, window_funnel, FunnelOutcome, Session,
};
use proxbal_sim::engine::EngineReport;
use proxbal_trace::ParsedTrace;
use serde::{Deserialize, Serialize};

/// Which artifact a gate reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Source {
    /// The engine's per-epoch series (`EngineReport` JSON).
    Report,
    /// The trace event log (NDJSON): events for the primitives, counters
    /// for scalar gates.
    Trace,
}

/// The query a gate runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Kind {
    /// Sessionize rows where `active` holds; optional `peak` column.
    Sessionize { active: Expr, peak: Option<Expr> },
    /// Ordered steps within a window of row timestamps.
    Funnel {
        steps: Vec<Expr>,
        window: u64,
        /// `true` → run per trace track and merge (report tables have a
        /// single stream, so grouping is a no-op there).
        per_track: bool,
    },
    /// Regex-like pattern over per-row conditions.
    Sequence {
        conds: Vec<Expr>,
        pattern_text: String,
    },
    /// A scalar expression over the whole table.
    Scalar(Expr),
}

/// Threshold comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    fn parse(s: &str) -> Option<CmpOp> {
        Some(match s {
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            ">" => CmpOp::Gt,
            ">=" => CmpOp::Ge,
            "==" => CmpOp::Eq,
            "!=" => CmpOp::Ne,
            _ => return None,
        })
    }

    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }

    /// Applies the comparison with `tolerance` slack in the passing
    /// direction: `<`/`<=` allow `threshold + tol`, `>`/`>=` allow
    /// `threshold - tol`, `==` allows `|actual - threshold| <= tol`, and
    /// `!=` requires `|actual - threshold| > tol`.
    pub fn holds(&self, actual: f64, threshold: f64, tolerance: f64) -> bool {
        match self {
            CmpOp::Lt => actual < threshold + tolerance,
            CmpOp::Le => actual <= threshold + tolerance,
            CmpOp::Gt => actual > threshold - tolerance,
            CmpOp::Ge => actual >= threshold - tolerance,
            CmpOp::Eq => (actual - threshold).abs() <= tolerance,
            CmpOp::Ne => (actual - threshold).abs() > tolerance,
        }
    }
}

/// One fully parsed gate.
#[derive(Clone, Debug)]
pub struct Gate {
    /// Gate name, unique across loaded files (enforced at load).
    pub name: String,
    /// Which artifact it reads.
    pub source: Source,
    /// The query.
    pub kind: Kind,
    /// Which number of the query outcome to compare (e.g. `p99_len`,
    /// `completion`, `matches`; `value` for scalar gates).
    pub metric: String,
    pub op: CmpOp,
    pub threshold: f64,
    pub tolerance: f64,
}

/// The run artifacts gates evaluate against.
#[derive(Clone, Copy, Default)]
pub struct Artifacts<'a> {
    pub report: Option<&'a EngineReport>,
    pub trace: Option<&'a ParsedTrace>,
}

/// One gate's outcome — serialized into the machine-readable report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GateResult {
    pub name: String,
    /// `"report"` or `"trace"`.
    pub source: String,
    /// `"sessionize"`, `"funnel"`, `"sequence"`, or `"scalar"`.
    pub kind: String,
    pub metric: String,
    pub actual: f64,
    pub op: String,
    pub threshold: f64,
    pub tolerance: f64,
    pub pass: bool,
    /// One-line context: session/instance counts, or the error text when
    /// evaluation itself failed (which is always a failure).
    pub detail: String,
}

impl Gate {
    /// Parses one `[[gate]]` table. `origin` names the file for errors.
    pub fn from_table(table: &crate::toml::TomlTable, origin: &str) -> Result<Gate, String> {
        let name = table
            .get_str("name")
            .ok_or_else(|| format!("{origin}: gate without a name"))?
            .to_owned();
        let at = |msg: String| format!("{origin}: gate {name:?}: {msg}");

        let source = match table.get_str("source") {
            Some("report") => Source::Report,
            Some("trace") => Source::Trace,
            Some(other) => return Err(at(format!("unknown source {other:?}"))),
            None => return Err(at("missing source (report|trace)".into())),
        };

        let parse_expr = |key: &str| -> Result<Option<Expr>, String> {
            table
                .get_str(key)
                .map(|s| Expr::parse(s).map_err(|e| at(format!("{key}: {e}"))))
                .transpose()
        };

        let kind_name = table
            .get_str("kind")
            .ok_or_else(|| at("missing kind (sessionize|funnel|sequence|scalar)".into()))?;
        let kind = match kind_name {
            "sessionize" => Kind::Sessionize {
                active: parse_expr("where")?
                    .ok_or_else(|| at("sessionize needs a `where` predicate".into()))?,
                peak: parse_expr("peak")?,
            },
            "funnel" => {
                let Some(crate::toml::TomlVal::StrArr(step_texts)) = table.get("steps") else {
                    return Err(at("funnel needs `steps`, an array of predicates".into()));
                };
                if step_texts.is_empty() || step_texts.len() > 32 {
                    return Err(at("funnel needs 1..=32 steps".into()));
                }
                let steps = step_texts
                    .iter()
                    .map(|s| Expr::parse(s).map_err(|e| at(format!("step {s:?}: {e}"))))
                    .collect::<Result<_, _>>()?;
                let window = table
                    .get_num("window")
                    .ok_or_else(|| at("funnel needs a `window`".into()))?;
                if window < 0.0 || window.fract() != 0.0 {
                    return Err(at("window must be a non-negative integer".into()));
                }
                let per_track = match table.get_str("group_by") {
                    None => false,
                    Some("track") => true,
                    Some(other) => return Err(at(format!("unknown group_by {other:?}"))),
                };
                if per_track && source != Source::Trace {
                    return Err(at("group_by = \"track\" requires source = \"trace\"".into()));
                }
                Kind::Funnel {
                    steps,
                    window: window as u64,
                    per_track,
                }
            }
            "sequence" => {
                let Some(crate::toml::TomlVal::StrArr(cond_texts)) = table.get("conds") else {
                    return Err(at("sequence needs `conds`, an array of predicates".into()));
                };
                let conds: Vec<Expr> = cond_texts
                    .iter()
                    .map(|s| Expr::parse(s).map_err(|e| at(format!("cond {s:?}: {e}"))))
                    .collect::<Result<_, _>>()?;
                let pattern_text = table
                    .get_str("pattern")
                    .ok_or_else(|| at("sequence needs a `pattern`".into()))?
                    .to_owned();
                // Validate eagerly so malformed patterns fail at load.
                parse_pattern(&pattern_text, conds.len()).map_err(&at)?;
                Kind::Sequence {
                    conds,
                    pattern_text,
                }
            }
            "scalar" => Kind::Scalar(
                parse_expr("expr")?.ok_or_else(|| at("scalar needs an `expr`".into()))?,
            ),
            other => return Err(at(format!("unknown kind {other:?}"))),
        };

        let metric = table
            .get_str("metric")
            .unwrap_or(match &kind {
                Kind::Sessionize { .. } => "count",
                Kind::Funnel { .. } => "completion",
                Kind::Sequence { .. } => "matches",
                Kind::Scalar(_) => "value",
            })
            .to_owned();
        let op = table
            .get_str("op")
            .and_then(CmpOp::parse)
            .ok_or_else(|| at("missing/unknown op (< <= > >= == !=)".into()))?;
        let threshold = table
            .get_num("threshold")
            .ok_or_else(|| at("missing numeric threshold".into()))?;
        let tolerance = table.get_num("tolerance").unwrap_or(0.0);
        if tolerance < 0.0 {
            return Err(at("tolerance must be >= 0".into()));
        }

        Ok(Gate {
            name,
            source,
            kind,
            metric,
            op,
            threshold,
            tolerance,
        })
    }

    /// Evaluates the gate. Evaluation errors (missing artifact, unknown
    /// column, unknown metric) become failing results, never silent passes.
    pub fn evaluate(&self, artifacts: &Artifacts<'_>) -> GateResult {
        let (actual, detail) = match self.compute(artifacts) {
            Ok(pair) => pair,
            Err(msg) => return self.result(f64::NAN, false, format!("evaluation failed: {msg}")),
        };
        let pass = self.op.holds(actual, self.threshold, self.tolerance);
        self.result(actual, pass, detail)
    }

    fn result(&self, actual: f64, pass: bool, detail: String) -> GateResult {
        GateResult {
            name: self.name.clone(),
            source: match self.source {
                Source::Report => "report",
                Source::Trace => "trace",
            }
            .to_owned(),
            kind: match self.kind {
                Kind::Sessionize { .. } => "sessionize",
                Kind::Funnel { .. } => "funnel",
                Kind::Sequence { .. } => "sequence",
                Kind::Scalar(_) => "scalar",
            }
            .to_owned(),
            metric: self.metric.clone(),
            actual,
            op: self.op.symbol().to_owned(),
            threshold: self.threshold,
            tolerance: self.tolerance,
            pass,
            detail,
        }
    }

    fn compute(&self, artifacts: &Artifacts<'_>) -> Result<(f64, String), String> {
        match self.source {
            Source::Report => {
                let report = artifacts
                    .report
                    .ok_or("gate reads the report, but no report artifact was given")?;
                let table = EpochTable::of(report);
                let ts = table.timestamps();
                self.compute_on(&table, &ts, None)
            }
            Source::Trace => {
                let trace = artifacts
                    .trace
                    .ok_or("gate reads the trace, but no trace artifact was given")?;
                match &self.kind {
                    // Scalar trace gates read the counter table.
                    Kind::Scalar(_) => self.compute_on(&CounterTable::of(trace), &[0], None),
                    _ => {
                        let table = EventTable::of(trace);
                        let ts = table.timestamps();
                        self.compute_on(&table, &ts, Some(trace))
                    }
                }
            }
        }
    }

    fn compute_on(
        &self,
        table: &dyn Table,
        ts: &[u64],
        trace: Option<&ParsedTrace>,
    ) -> Result<(f64, String), String> {
        match &self.kind {
            Kind::Sessionize { active, peak } => {
                let mask = active.eval_mask(table)?;
                let peaks = peak.as_ref().map(|p| p.eval_column(table)).transpose()?;
                let sessions = sessionize(&mask, peaks.as_deref());
                let actual = session_metric(&self.metric, &sessions)?;
                Ok((
                    actual,
                    format!("{} session(s) over {} row(s)", sessions.len(), mask.len()),
                ))
            }
            Kind::Funnel {
                steps,
                window,
                per_track,
            } => {
                let outcome = if *per_track {
                    let trace = trace.ok_or("group_by = \"track\" requires the trace artifact")?;
                    let mut merged = FunnelOutcome::default();
                    for track in trace.track_names() {
                        let sub = EventTable::of_track(trace, track);
                        let sub_ts = sub.timestamps();
                        merged.merge(run_funnel(steps, *window, &sub, &sub_ts)?);
                    }
                    merged
                } else {
                    run_funnel(steps, *window, table, ts)?
                };
                let actual = match self.metric.as_str() {
                    "completion" => outcome.completion(),
                    "entered" => outcome.entered as f64,
                    "completed" => outcome.completed as f64,
                    "deepest" => outcome.deepest as f64,
                    other => return Err(format!("unknown funnel metric {other:?}")),
                };
                Ok((
                    actual,
                    format!(
                        "{}/{} instance(s) completed, deepest step {}",
                        outcome.completed, outcome.entered, outcome.deepest
                    ),
                ))
            }
            Kind::Sequence {
                conds,
                pattern_text,
            } => {
                let pattern = parse_pattern(pattern_text, conds.len())?;
                let masks: Vec<Vec<bool>> = conds
                    .iter()
                    .map(|c| c.eval_mask(table))
                    .collect::<Result<_, _>>()?;
                let matches = sequence_match(&masks, ts, &pattern);
                if self.metric != "matches" {
                    return Err(format!("unknown sequence metric {:?}", self.metric));
                }
                Ok((
                    matches as f64,
                    format!("pattern {pattern_text:?} over {} row(s)", ts.len()),
                ))
            }
            Kind::Scalar(expr) => {
                if self.metric != "value" {
                    return Err(format!("unknown scalar metric {:?}", self.metric));
                }
                let v = expr.eval_scalar(table)?;
                Ok((v.as_num()?, format!("over {} row(s)", table.len())))
            }
        }
    }
}

fn run_funnel(
    steps: &[Expr],
    window: u64,
    table: &dyn Table,
    ts: &[u64],
) -> Result<FunnelOutcome, String> {
    let mut events: Vec<(u64, u32)> = Vec::with_capacity(ts.len());
    let masks: Vec<Vec<bool>> = steps
        .iter()
        .map(|s| s.eval_mask(table))
        .collect::<Result<_, _>>()?;
    for (i, &t) in ts.iter().enumerate() {
        let mut bits = 0u32;
        for (s, mask) in masks.iter().enumerate() {
            if mask[i] {
                bits |= 1 << s;
            }
        }
        events.push((t, bits));
    }
    Ok(window_funnel(&events, steps.len(), window))
}

fn session_metric(metric: &str, sessions: &[Session]) -> Result<f64, String> {
    let lens: Vec<f64> = sessions.iter().map(|s| s.len as f64).collect();
    let peaks: Vec<f64> = sessions.iter().map(|s| s.peak).collect();
    Ok(match metric {
        "count" => sessions.len() as f64,
        // Length/peak metrics of zero sessions are 0 — "no heavy episodes"
        // must pass a `p99_len <= K` gate, not crash it.
        "max_len" => lens.iter().cloned().fold(0.0, f64::max),
        "mean_len" => {
            if lens.is_empty() {
                0.0
            } else {
                lens.iter().sum::<f64>() / lens.len() as f64
            }
        }
        "p99_len" => {
            if lens.is_empty() {
                0.0
            } else {
                crate::expr::percentile(&lens, 0.99)
            }
        }
        "total_len" => lens.iter().sum(),
        "max_peak" => peaks.iter().cloned().fold(0.0, f64::max),
        "mean_peak" => {
            if peaks.is_empty() {
                0.0
            } else {
                peaks.iter().sum::<f64>() / peaks.len() as f64
            }
        }
        other => return Err(format!("unknown sessionize metric {other:?}")),
    })
}

/// Parses every `[[gate]]` in one gate-file text. `origin` names the file
/// for error messages. Tables not named `gate` are an error.
pub fn parse_gate_file(text: &str, origin: &str) -> Result<Vec<Gate>, String> {
    let tables = crate::toml::parse_tables(text).map_err(|e| format!("{origin}: {e}"))?;
    let mut gates = Vec::new();
    for (header, table) in &tables {
        if header != "gate" {
            return Err(format!(
                "{origin}: unexpected table [[{header}]] (only [[gate]] is allowed)"
            ));
        }
        gates.push(Gate::from_table(table, origin)?);
    }
    if gates.is_empty() {
        return Err(format!("{origin}: no [[gate]] tables"));
    }
    Ok(gates)
}

/// Evaluates gates on the worker pool (pure jobs, index-order merge — the
/// result vector is independent of `threads`) and returns results in gate
/// order.
pub fn evaluate_gates(
    gates: &[Gate],
    artifacts: &Artifacts<'_>,
    threads: usize,
) -> Vec<GateResult> {
    proxbal_parallel::map_items(gates, threads, |_, gate| gate.evaluate(artifacts))
}

/// Renders results as the human-readable table `repro analyze` prints.
/// Violations (and only violations) carry a `FAIL` marker plus their
/// detail line, so a failing CI log names every broken gate.
pub fn render_table(results: &[GateResult]) -> String {
    let name_w = results
        .iter()
        .map(|r| r.name.len())
        .chain(["gate".len()])
        .max()
        .unwrap_or(4);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_w$}  {:<10}  {:>12}  {:^2}  {:>12}  {:>9}  result\n",
        "gate", "kind", "actual", "op", "threshold", "tolerance"
    ));
    for r in results {
        let actual = if r.actual.is_nan() {
            "-".to_owned()
        } else {
            format_num(r.actual)
        };
        out.push_str(&format!(
            "{:<name_w$}  {:<10}  {:>12}  {:^2}  {:>12}  {:>9}  {}\n",
            r.name,
            r.kind,
            actual,
            r.op,
            format_num(r.threshold),
            format_num(r.tolerance),
            if r.pass { "ok" } else { "FAIL" }
        ));
        if !r.pass {
            out.push_str(&format!("{:<name_w$}    ^ {}\n", "", r.detail));
        }
    }
    let failed = results.iter().filter(|r| !r.pass).count();
    out.push_str(&format!(
        "{} gate(s): {} passed, {} failed\n",
        results.len(),
        results.len() - failed,
        failed
    ));
    out
}

fn format_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toml::parse_tables;

    fn gate_from(text: &str) -> Result<Vec<Gate>, String> {
        parse_gate_file(text, "test.toml")
    }

    #[test]
    fn tolerance_semantics() {
        assert!(CmpOp::Le.holds(4.4, 4.0, 0.5));
        assert!(!CmpOp::Le.holds(4.6, 4.0, 0.5));
        assert!(CmpOp::Ge.holds(0.96, 1.0, 0.05));
        assert!(!CmpOp::Ge.holds(0.94, 1.0, 0.05));
        assert!(CmpOp::Eq.holds(1.01, 1.0, 0.05));
        assert!(!CmpOp::Eq.holds(1.1, 1.0, 0.05));
        assert!(CmpOp::Ne.holds(1.1, 1.0, 0.05));
        assert!(!CmpOp::Ne.holds(1.01, 1.0, 0.05));
        assert!(CmpOp::Lt.holds(4.4, 4.0, 0.5));
        assert!(CmpOp::Gt.holds(3.6, 4.0, 0.5));
    }

    #[test]
    fn load_errors_name_the_gate() {
        let err = gate_from(
            "[[gate]]\nname = \"g\"\nsource = \"report\"\nkind = \"sessionize\"\n\
             where = \"heavy >\"\nop = \"<=\"\nthreshold = 1\n",
        )
        .unwrap_err();
        assert!(err.contains("test.toml"), "{err}");
        assert!(err.contains("\"g\""), "{err}");
        assert!(gate_from("[[other]]\nname = \"x\"\n").is_err());
        assert!(gate_from("# nothing\n").is_err());
        // Bad sequence pattern fails at load, not at evaluation.
        let err = gate_from(
            "[[gate]]\nname = \"s\"\nsource = \"report\"\nkind = \"sequence\"\n\
             conds = [\"emergency\"]\npattern = \"(?2)\"\nop = \"==\"\nthreshold = 0\n",
        )
        .unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn missing_artifact_fails_the_gate() {
        let gates = gate_from(
            "[[gate]]\nname = \"g\"\nsource = \"report\"\nkind = \"scalar\"\n\
             expr = \"last(heavy)\"\nop = \"==\"\nthreshold = 0\n",
        )
        .unwrap();
        let results = evaluate_gates(&gates, &Artifacts::default(), 1);
        assert!(!results[0].pass);
        assert!(results[0].detail.contains("no report artifact"));
        assert!(render_table(&results).contains("FAIL"));
    }

    #[test]
    fn defaults_for_metric_and_tolerance() {
        let tables = parse_tables(
            "[[gate]]\nname = \"g\"\nsource = \"trace\"\nkind = \"scalar\"\n\
             expr = \"des_gave_up\"\nop = \"==\"\nthreshold = 0\n",
        )
        .unwrap();
        let gate = Gate::from_table(&tables[0].1, "t").unwrap();
        assert_eq!(gate.metric, "value");
        assert_eq!(gate.tolerance, 0.0);
    }
}
