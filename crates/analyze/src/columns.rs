//! Columnar views over run artifacts: the engine's per-epoch series, a
//! trace's event stream, and a trace's counter set — each exposed as a
//! [`Table`] the expression language evaluates against.

use crate::expr::{Table, Val};
use proxbal_sim::engine::{EngineReport, EpochSample};
use proxbal_trace::{ArgValue, EventKind, ParsedEvent, ParsedTrace};

/// The engine's epoch series as a table: one row per epoch, one column per
/// [`EpochSample`] field. The row timestamp for funnels/sequences is the
/// epoch index.
pub struct EpochTable<'a> {
    samples: &'a [EpochSample],
}

impl<'a> EpochTable<'a> {
    pub fn of(report: &'a EngineReport) -> Self {
        EpochTable {
            samples: &report.samples,
        }
    }

    /// Row timestamps: epoch indices.
    pub fn timestamps(&self) -> Vec<u64> {
        self.samples.iter().map(|s| s.epoch as u64).collect()
    }

    /// The column names this table resolves (for error messages and docs).
    pub const COLUMNS: &'static [&'static str] = &[
        "epoch",
        "alive_peers",
        "gini",
        "heavy",
        "joins",
        "crashes",
        "stale_links",
        "repair_reattached",
        "repair_pruned",
        "maintenance_rounds",
        "balanced",
        "emergency",
        "balance_passes",
        "moved",
        "transfers",
        "messages",
        "des_messages",
        "des_retries",
    ];
}

impl Table for EpochTable<'_> {
    fn len(&self) -> usize {
        self.samples.len()
    }

    fn lookup(&self, row: usize, name: &str) -> Option<Val> {
        let s = &self.samples[row];
        Some(match name {
            "epoch" => Val::Num(s.epoch as f64),
            "alive_peers" => Val::Num(s.alive_peers as f64),
            "gini" => Val::Num(s.gini),
            "heavy" => Val::Num(s.heavy as f64),
            "joins" => Val::Num(s.joins as f64),
            "crashes" => Val::Num(s.crashes as f64),
            "stale_links" => Val::Num(s.stale_links as f64),
            "repair_reattached" => Val::Num(s.repair_reattached as f64),
            "repair_pruned" => Val::Num(s.repair_pruned as f64),
            "maintenance_rounds" => Val::Num(s.maintenance_rounds as f64),
            "balanced" => Val::Bool(s.balanced),
            "emergency" => Val::Bool(s.emergency),
            "balance_passes" => Val::Num(s.balance_passes as f64),
            "moved" => Val::Num(s.moved),
            "transfers" => Val::Num(s.transfers as f64),
            "messages" => Val::Num(s.messages as f64),
            "des_messages" => Val::Num(s.des_messages as f64),
            "des_retries" => Val::Num(s.des_retries as f64),
            _ => return None,
        })
    }
}

/// A trace's spans/instants as a table: one row per event in file order.
/// Columns: `track`, `name`, `kind` (`"span"`/`"instant"`), `ts`, `dur`,
/// plus `args.<key>` for event arguments — an absent argument reads as 0,
/// because the exporter omits args entirely on lean events and gate
/// predicates like `args.transfers > 0` must treat those as zero, not fail.
pub struct EventTable<'a> {
    events: Vec<&'a ParsedEvent>,
}

impl<'a> EventTable<'a> {
    /// All events of the trace, in file order.
    pub fn of(trace: &'a ParsedTrace) -> Self {
        EventTable {
            events: trace.events.iter().collect(),
        }
    }

    /// Only the events of one track, in file order.
    pub fn of_track(trace: &'a ParsedTrace, track: &str) -> Self {
        EventTable {
            events: trace.events.iter().filter(|e| e.track == track).collect(),
        }
    }

    /// Row timestamps: the events' virtual-time stamps. Within a track
    /// these are non-decreasing per the trace contract; across tracks the
    /// caller should group first (see [`EventTable::of_track`]).
    pub fn timestamps(&self) -> Vec<u64> {
        self.events.iter().map(|e| e.ts).collect()
    }
}

fn arg_val(v: &ArgValue) -> Val {
    match v {
        ArgValue::U64(n) => Val::Num(*n as f64),
        ArgValue::I64(n) => Val::Num(*n as f64),
        ArgValue::F64(x) => Val::Num(*x),
        ArgValue::Bool(b) => Val::Bool(*b),
        ArgValue::Str(s) => Val::Str(s.clone()),
    }
}

impl Table for EventTable<'_> {
    fn len(&self) -> usize {
        self.events.len()
    }

    fn lookup(&self, row: usize, name: &str) -> Option<Val> {
        let e = self.events[row];
        if let Some(key) = name.strip_prefix("args.") {
            return Some(
                e.args
                    .iter()
                    .find(|(k, _)| k == key)
                    .map_or(Val::Num(0.0), |(_, v)| arg_val(v)),
            );
        }
        Some(match name {
            "track" => Val::Str(e.track.clone()),
            "name" => Val::Str(e.name.clone()),
            "kind" => Val::Str(
                match e.kind {
                    EventKind::Span => "span",
                    EventKind::Instant => "instant",
                }
                .to_owned(),
            ),
            "ts" => Val::Num(e.ts as f64),
            "dur" => Val::Num(e.dur as f64),
            _ => return None,
        })
    }
}

/// A trace's counters as a single-row table, so scalar gates can assert
/// directly on totals (`des_gave_up == 0`). Every name resolves — an
/// absent counter is 0, matching `Trace::counter` — so `kind = "scalar"`
/// trace gates cannot fail on a missing counter, only on its value.
pub struct CounterTable<'a> {
    trace: &'a ParsedTrace,
}

impl<'a> CounterTable<'a> {
    pub fn of(trace: &'a ParsedTrace) -> Self {
        CounterTable { trace }
    }
}

impl Table for CounterTable<'_> {
    fn len(&self) -> usize {
        1
    }

    fn lookup(&self, _row: usize, name: &str) -> Option<Val> {
        Some(Val::Num(self.trace.any_counter(name)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use proxbal_trace::Trace;

    #[test]
    fn event_table_columns_and_absent_args() {
        let mut t = Trace::enabled("repro");
        t.span_args("round/vsa", 0, 5, &[("pairings", ArgValue::U64(9))]);
        t.instant("kt/stale", 7);
        let parsed = ParsedTrace::of(&t).unwrap();
        let table = EventTable::of(&parsed);
        assert_eq!(table.len(), 2);
        let mask = Expr::parse("name == 'round/vsa' and args.pairings > 0")
            .unwrap()
            .eval_mask(&table)
            .unwrap();
        assert_eq!(mask, vec![true, false]);
        // Absent arg reads 0; unknown column errors.
        let mask = Expr::parse("args.pairings == 0").unwrap().eval_mask(&table);
        assert_eq!(mask.unwrap(), vec![false, true]);
        assert!(Expr::parse("bogus > 0").unwrap().eval_mask(&table).is_err());
        assert_eq!(table.timestamps(), vec![0, 7]);
    }

    #[test]
    fn counter_table_reads_both_kinds() {
        let mut t = Trace::enabled("x");
        t.count("des_retries", 4);
        t.count_f64("vst_moved_load", 2.5);
        let parsed = ParsedTrace::of(&t).unwrap();
        let table = CounterTable::of(&parsed);
        let eval = |s: &str| Expr::parse(s).unwrap().eval_scalar(&table).unwrap();
        assert_eq!(eval("des_retries"), Val::Num(4.0));
        assert_eq!(eval("vst_moved_load"), Val::Num(2.5));
        assert_eq!(eval("missing_counter"), Val::Num(0.0));
    }
}
