//! The gate-file expression language: a small, total, deterministic
//! predicate/metric language over tabular run data.
//!
//! Grammar (binding loosest → tightest):
//!
//! ```text
//! or    := and ( "or" and )*
//! and   := not ( "and" not )*
//! not   := "not" not | cmp
//! cmp   := sum ( ("<" | "<=" | ">" | ">=" | "==" | "!=") sum )?
//! sum   := term ( ("+" | "-") term )*
//! term  := unary ( ("*" | "/") unary )*
//! unary := "-" unary | primary
//! primary := NUMBER | STRING | "true" | "false" | IDENT
//!          | FUNC "(" or ")" | "(" or ")"
//! ```
//!
//! Identifiers are column names (`heavy`, `repair_reattached`) or, over
//! trace events, `track` / `name` / `ts` / `dur` / `kind` and `args.<key>`
//! (an absent argument reads as 0, since the exporter omits empty args).
//! Strings use single or double quotes.
//!
//! Expressions evaluate in two modes:
//!
//! - **per-row** ([`eval_row`]): against one row's [`Scope`]; aggregate
//!   calls are rejected — a predicate is a pure function of one row.
//! - **scalar** ([`eval_scalar`]): against a whole [`Table`]; aggregate
//!   calls (`max`, `min`, `sum`, `mean`, `count`, `first`, `last`, `p50`,
//!   `p90`, `p99`, `any`, `all`) evaluate their argument per row and
//!   reduce, while a bare column reads the **last** row (end-of-run
//!   state). Booleans coerce to 0/1 inside numeric aggregates.
//!
//! Everything is f64/bool/string — no nulls, no wall-clock, no
//! environment: the same expression over the same table always yields the
//! same value, which is what lets gate evaluation run on the worker pool
//! without threatening byte-identical reports.

/// A value the language computes with.
#[derive(Clone, Debug, PartialEq)]
pub enum Val {
    Num(f64),
    Bool(bool),
    Str(String),
}

impl Val {
    /// Numeric view: numbers as-is, booleans as 0/1. Strings refuse.
    pub fn as_num(&self) -> Result<f64, String> {
        match self {
            Val::Num(x) => Ok(*x),
            Val::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            Val::Str(s) => Err(format!("string {s:?} used as a number")),
        }
    }

    /// Truthiness: booleans as-is, numbers ≠ 0, strings refuse.
    pub fn truthy(&self) -> Result<bool, String> {
        match self {
            Val::Bool(b) => Ok(*b),
            Val::Num(x) => Ok(*x != 0.0),
            Val::Str(s) => Err(format!("string {s:?} used as a condition")),
        }
    }
}

/// One row's name → value binding.
pub trait Scope {
    /// Resolves a column/identifier, or `None` if the name is unknown
    /// (which makes evaluation fail — typos must not silently pass gates).
    fn lookup(&self, name: &str) -> Option<Val>;
}

/// A whole table of rows sharing a column namespace.
pub trait Table {
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Resolves column `name` at `row`.
    fn lookup(&self, row: usize, name: &str) -> Option<Val>;
}

/// Adapter viewing one [`Table`] row as a [`Scope`].
pub struct RowScope<'a> {
    pub table: &'a dyn Table,
    pub row: usize,
}

impl Scope for RowScope<'_> {
    fn lookup(&self, name: &str) -> Option<Val> {
        self.table.lookup(self.row, name)
    }
}

/// A parsed expression, ready to evaluate any number of times.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Num(f64),
    Bool(bool),
    Str(String),
    Ident(String),
    Not(Box<Expr>),
    Neg(Box<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Agg(AggFn, Box<Expr>),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Or,
    And,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    Add,
    Sub,
    Mul,
    Div,
}

/// Aggregate functions available in scalar mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFn {
    Max,
    Min,
    Sum,
    Mean,
    Count,
    First,
    Last,
    P50,
    P90,
    P99,
    Any,
    All,
}

impl AggFn {
    fn from_name(name: &str) -> Option<AggFn> {
        Some(match name {
            "max" => AggFn::Max,
            "min" => AggFn::Min,
            "sum" => AggFn::Sum,
            "mean" => AggFn::Mean,
            "count" => AggFn::Count,
            "first" => AggFn::First,
            "last" => AggFn::Last,
            "p50" => AggFn::P50,
            "p90" => AggFn::P90,
            "p99" => AggFn::P99,
            "any" => AggFn::Any,
            "all" => AggFn::All,
            _ => return None,
        })
    }
}

impl Expr {
    /// Parses `text` into an expression. Errors carry byte offsets into the
    /// expression string.
    pub fn parse(text: &str) -> Result<Expr, String> {
        let mut p = Parser {
            tokens: lex(text)?,
            pos: 0,
        };
        let e = p.parse_or()?;
        match p.peek() {
            None => Ok(e),
            Some(t) => Err(format!("unexpected {:?} after expression", t.text)),
        }
    }

    /// Evaluates against a single row. Aggregate calls are an error here.
    pub fn eval_row(&self, scope: &dyn Scope) -> Result<Val, String> {
        match self {
            Expr::Num(x) => Ok(Val::Num(*x)),
            Expr::Bool(b) => Ok(Val::Bool(*b)),
            Expr::Str(s) => Ok(Val::Str(s.clone())),
            Expr::Ident(name) => scope
                .lookup(name)
                .ok_or_else(|| format!("unknown column {name:?}")),
            Expr::Not(e) => Ok(Val::Bool(!e.eval_row(scope)?.truthy()?)),
            Expr::Neg(e) => Ok(Val::Num(-e.eval_row(scope)?.as_num()?)),
            Expr::Bin(op, a, b) => eval_bin(*op, &a.eval_row(scope)?, || b.eval_row(scope)),
            Expr::Agg(_, _) => {
                Err("aggregate functions are not allowed in per-row predicates".into())
            }
        }
    }

    /// Evaluates against a whole table: aggregates reduce over all rows, a
    /// bare column reads the last row.
    pub fn eval_scalar(&self, table: &dyn Table) -> Result<Val, String> {
        match self {
            Expr::Num(x) => Ok(Val::Num(*x)),
            Expr::Bool(b) => Ok(Val::Bool(*b)),
            Expr::Str(s) => Ok(Val::Str(s.clone())),
            Expr::Ident(name) => {
                if table.is_empty() {
                    return Err(format!("column {name:?} read from an empty table"));
                }
                let last = RowScope {
                    table,
                    row: table.len() - 1,
                };
                last.lookup(name)
                    .ok_or_else(|| format!("unknown column {name:?}"))
            }
            Expr::Not(e) => Ok(Val::Bool(!e.eval_scalar(table)?.truthy()?)),
            Expr::Neg(e) => Ok(Val::Num(-e.eval_scalar(table)?.as_num()?)),
            Expr::Bin(op, a, b) => eval_bin(*op, &a.eval_scalar(table)?, || b.eval_scalar(table)),
            Expr::Agg(f, arg) => {
                let mut vals = Vec::with_capacity(table.len());
                for row in 0..table.len() {
                    vals.push(arg.eval_row(&RowScope { table, row })?);
                }
                aggregate(*f, &vals)
            }
        }
    }

    /// Evaluates a per-row predicate over every row of a table.
    pub fn eval_mask(&self, table: &dyn Table) -> Result<Vec<bool>, String> {
        (0..table.len())
            .map(|row| self.eval_row(&RowScope { table, row })?.truthy())
            .collect()
    }

    /// Evaluates a per-row numeric column over every row of a table.
    pub fn eval_column(&self, table: &dyn Table) -> Result<Vec<f64>, String> {
        (0..table.len())
            .map(|row| self.eval_row(&RowScope { table, row })?.as_num())
            .collect()
    }
}

fn eval_bin(op: BinOp, a: &Val, b: impl FnOnce() -> Result<Val, String>) -> Result<Val, String> {
    match op {
        // Short-circuiting logic.
        BinOp::Or => {
            if a.truthy()? {
                return Ok(Val::Bool(true));
            }
            Ok(Val::Bool(b()?.truthy()?))
        }
        BinOp::And => {
            if !a.truthy()? {
                return Ok(Val::Bool(false));
            }
            Ok(Val::Bool(b()?.truthy()?))
        }
        _ => {
            let b = b()?;
            match op {
                BinOp::Eq | BinOp::Ne => {
                    let eq = match (a, &b) {
                        (Val::Str(x), Val::Str(y)) => x == y,
                        (Val::Str(_), _) | (_, Val::Str(_)) => {
                            return Err("comparing a string with a non-string".into())
                        }
                        _ => a.as_num()? == b.as_num()?,
                    };
                    Ok(Val::Bool(if op == BinOp::Eq { eq } else { !eq }))
                }
                BinOp::Lt => Ok(Val::Bool(a.as_num()? < b.as_num()?)),
                BinOp::Le => Ok(Val::Bool(a.as_num()? <= b.as_num()?)),
                BinOp::Gt => Ok(Val::Bool(a.as_num()? > b.as_num()?)),
                BinOp::Ge => Ok(Val::Bool(a.as_num()? >= b.as_num()?)),
                BinOp::Add => Ok(Val::Num(a.as_num()? + b.as_num()?)),
                BinOp::Sub => Ok(Val::Num(a.as_num()? - b.as_num()?)),
                BinOp::Mul => Ok(Val::Num(a.as_num()? * b.as_num()?)),
                BinOp::Div => Ok(Val::Num(a.as_num()? / b.as_num()?)),
                BinOp::Or | BinOp::And => unreachable!("handled above"),
            }
        }
    }
}

fn aggregate(f: AggFn, vals: &[Val]) -> Result<Val, String> {
    match f {
        AggFn::Any => {
            for v in vals {
                if v.truthy()? {
                    return Ok(Val::Bool(true));
                }
            }
            Ok(Val::Bool(false))
        }
        AggFn::All => {
            for v in vals {
                if !v.truthy()? {
                    return Ok(Val::Bool(false));
                }
            }
            Ok(Val::Bool(true))
        }
        AggFn::Count => {
            let mut n = 0usize;
            for v in vals {
                if v.truthy()? {
                    n += 1;
                }
            }
            Ok(Val::Num(n as f64))
        }
        AggFn::First => vals
            .first()
            .cloned()
            .ok_or_else(|| "first() over an empty table".into()),
        AggFn::Last => vals
            .last()
            .cloned()
            .ok_or_else(|| "last() over an empty table".into()),
        _ => {
            let nums: Vec<f64> = vals.iter().map(Val::as_num).collect::<Result<_, _>>()?;
            if nums.is_empty() {
                return Err("numeric aggregate over an empty table".into());
            }
            let out = match f {
                AggFn::Max => nums.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                AggFn::Min => nums.iter().cloned().fold(f64::INFINITY, f64::min),
                AggFn::Sum => nums.iter().sum(),
                AggFn::Mean => nums.iter().sum::<f64>() / nums.len() as f64,
                AggFn::P50 => percentile(&nums, 0.50),
                AggFn::P90 => percentile(&nums, 0.90),
                AggFn::P99 => percentile(&nums, 0.99),
                _ => unreachable!("non-numeric aggregates handled above"),
            };
            Ok(Val::Num(out))
        }
    }
}

/// Nearest-rank percentile (ClickHouse/DuckDB "exact" style): sort and take
/// element `ceil(q·n) - 1`.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    debug_assert!(!values.is_empty());
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in percentile input"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

// ---- lexer / parser -------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
struct Token {
    text: String,
    kind: TokKind,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TokKind {
    Num,
    Str,
    Ident,
    Op,
}

fn lex(text: &str) -> Result<Vec<Token>, String> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' | b')' | b'+' | b'-' | b'*' | b'/' => {
                tokens.push(Token {
                    text: (b as char).to_string(),
                    kind: TokKind::Op,
                });
                i += 1;
            }
            b'<' | b'>' | b'=' | b'!' => {
                let two = bytes.get(i + 1) == Some(&b'=');
                let end = if two { i + 2 } else { i + 1 };
                let text = &text[i..end];
                if text == "=" || text == "!" {
                    return Err(format!("stray {text:?} (did you mean == or !=?)"));
                }
                tokens.push(Token {
                    text: text.to_owned(),
                    kind: TokKind::Op,
                });
                i = end;
            }
            b'"' | b'\'' => {
                let quote = b;
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != quote {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err("unterminated string literal".into());
                }
                tokens.push(Token {
                    text: text[start..j].to_owned(),
                    kind: TokKind::Str,
                });
                i = j + 1;
            }
            b'0'..=b'9' | b'.' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit() || bytes[i] == b'.' || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    text: text[start..i].replace('_', ""),
                    kind: TokKind::Num,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    i += 1;
                }
                tokens.push(Token {
                    text: text[start..i].to_owned(),
                    kind: TokKind::Ident,
                });
            }
            other => return Err(format!("unexpected character {:?}", other as char)),
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if let Some(t) = self.peek() {
            if t.kind == TokKind::Op && t.text == op {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(t) = self.peek() {
            if t.kind == TokKind::Ident && t.text == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn parse_or(&mut self) -> Result<Expr, String> {
        let mut e = self.parse_and()?;
        while self.eat_ident("or") {
            let rhs = self.parse_and()?;
            e = Expr::Bin(BinOp::Or, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn parse_and(&mut self) -> Result<Expr, String> {
        let mut e = self.parse_not()?;
        while self.eat_ident("and") {
            let rhs = self.parse_not()?;
            e = Expr::Bin(BinOp::And, Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn parse_not(&mut self) -> Result<Expr, String> {
        if self.eat_ident("not") {
            return Ok(Expr::Not(Box::new(self.parse_not()?)));
        }
        self.parse_cmp()
    }

    fn parse_cmp(&mut self) -> Result<Expr, String> {
        let lhs = self.parse_sum()?;
        for (text, op) in [
            ("<=", BinOp::Le),
            (">=", BinOp::Ge),
            ("==", BinOp::Eq),
            ("!=", BinOp::Ne),
            ("<", BinOp::Lt),
            (">", BinOp::Gt),
        ] {
            if self.eat_op(text) {
                let rhs = self.parse_sum()?;
                return Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn parse_sum(&mut self) -> Result<Expr, String> {
        let mut e = self.parse_term()?;
        loop {
            if self.eat_op("+") {
                let rhs = self.parse_term()?;
                e = Expr::Bin(BinOp::Add, Box::new(e), Box::new(rhs));
            } else if self.eat_op("-") {
                let rhs = self.parse_term()?;
                e = Expr::Bin(BinOp::Sub, Box::new(e), Box::new(rhs));
            } else {
                return Ok(e);
            }
        }
    }

    fn parse_term(&mut self) -> Result<Expr, String> {
        let mut e = self.parse_unary()?;
        loop {
            if self.eat_op("*") {
                let rhs = self.parse_unary()?;
                e = Expr::Bin(BinOp::Mul, Box::new(e), Box::new(rhs));
            } else if self.eat_op("/") {
                let rhs = self.parse_unary()?;
                e = Expr::Bin(BinOp::Div, Box::new(e), Box::new(rhs));
            } else {
                return Ok(e);
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, String> {
        if self.eat_op("-") {
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, String> {
        let Some(tok) = self.peek().cloned() else {
            return Err("unexpected end of expression".into());
        };
        match tok.kind {
            TokKind::Num => {
                self.pos += 1;
                tok.text
                    .parse::<f64>()
                    .map(Expr::Num)
                    .map_err(|e| format!("bad number {:?}: {e}", tok.text))
            }
            TokKind::Str => {
                self.pos += 1;
                Ok(Expr::Str(tok.text))
            }
            TokKind::Ident => {
                self.pos += 1;
                match tok.text.as_str() {
                    "true" => return Ok(Expr::Bool(true)),
                    "false" => return Ok(Expr::Bool(false)),
                    _ => {}
                }
                if self.eat_op("(") {
                    let Some(f) = AggFn::from_name(&tok.text) else {
                        return Err(format!("unknown function {:?}", tok.text));
                    };
                    let arg = self.parse_or()?;
                    if !self.eat_op(")") {
                        return Err(format!("missing ')' after {}(...)", tok.text));
                    }
                    return Ok(Expr::Agg(f, Box::new(arg)));
                }
                Ok(Expr::Ident(tok.text))
            }
            TokKind::Op if tok.text == "(" => {
                self.pos += 1;
                let e = self.parse_or()?;
                if !self.eat_op(")") {
                    return Err("missing closing ')'".into());
                }
                Ok(e)
            }
            TokKind::Op => Err(format!("unexpected operator {:?}", tok.text)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Cols(Vec<(&'static str, Vec<f64>)>);

    impl Table for Cols {
        fn len(&self) -> usize {
            self.0.first().map_or(0, |(_, v)| v.len())
        }
        fn lookup(&self, row: usize, name: &str) -> Option<Val> {
            self.0
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| Val::Num(v[row]))
        }
    }

    fn table() -> Cols {
        Cols(vec![
            ("heavy", vec![3.0, 1.0, 0.0, 2.0, 0.0]),
            ("moved", vec![1.5, 0.5, 0.0, 1.0, 0.0]),
        ])
    }

    #[test]
    fn precedence_and_logic() {
        let t = table();
        let v = Expr::parse("1 + 2 * 3 == 7 and not (2 < 1)")
            .unwrap()
            .eval_scalar(&t)
            .unwrap();
        assert_eq!(v, Val::Bool(true));
        let v = Expr::parse("-2 * 3 + 1").unwrap().eval_scalar(&t).unwrap();
        assert_eq!(v, Val::Num(-5.0));
    }

    #[test]
    fn aggregates_and_last_row_reads() {
        let t = table();
        let eval = |s: &str| Expr::parse(s).unwrap().eval_scalar(&t).unwrap();
        assert_eq!(eval("max(heavy)"), Val::Num(3.0));
        assert_eq!(eval("sum(moved)"), Val::Num(3.0));
        assert_eq!(eval("count(heavy > 0)"), Val::Num(3.0));
        assert_eq!(eval("mean(heavy)"), Val::Num(1.2));
        assert_eq!(eval("first(heavy)"), Val::Num(3.0));
        assert_eq!(eval("last(heavy)"), Val::Num(0.0));
        // Bare column = last row.
        assert_eq!(eval("heavy"), Val::Num(0.0));
        assert_eq!(eval("any(heavy > 2)"), Val::Bool(true));
        assert_eq!(eval("all(heavy >= 0)"), Val::Bool(true));
        assert_eq!(eval("p50(heavy)"), Val::Num(1.0));
        assert_eq!(eval("p99(heavy)"), Val::Num(3.0));
    }

    #[test]
    fn per_row_mode_rejects_aggregates_and_typos() {
        let t = table();
        let e = Expr::parse("max(heavy) > 0").unwrap();
        assert!(e.eval_row(&RowScope { table: &t, row: 0 }).is_err());
        let e = Expr::parse("heavyy > 0").unwrap();
        assert!(e.eval_row(&RowScope { table: &t, row: 0 }).is_err());
        let mask = Expr::parse("heavy > 0 and moved >= 1")
            .unwrap()
            .eval_mask(&t)
            .unwrap();
        assert_eq!(mask, vec![true, false, false, true, false]);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Expr::parse("1 +").is_err());
        assert!(Expr::parse("foo(1)").is_err());
        assert!(Expr::parse("(1").is_err());
        assert!(Expr::parse("1 = 2").is_err());
        assert!(Expr::parse("'open").is_err());
        assert!(Expr::parse("1 2").is_err());
    }

    #[test]
    fn nearest_rank_percentiles() {
        let v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 0.9), 5.0);
        assert_eq!(percentile(&v, 0.99), 5.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
    }
}
