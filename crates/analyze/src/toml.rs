//! A hand-rolled parser for the TOML subset gate files use (the workspace
//! is offline — no `toml` crate). Supported: comments, `[[gate]]`
//! array-of-tables headers, and `key = value` pairs where a value is a
//! basic (`"…"`, with standard escapes) or literal (`'…'`) string, an
//! integer, a float, a boolean, or a single-line array of strings.
//! Anything else — nested tables, dotted keys, dates, multiline strings —
//! is a parse error with a line number, not a silent skip: a gate file
//! that doesn't parse must fail the gate run loudly.

/// A parsed value.
#[derive(Clone, Debug, PartialEq)]
pub enum TomlVal {
    Str(String),
    Num(f64),
    Bool(bool),
    StrArr(Vec<String>),
}

impl TomlVal {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TomlVal::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            TomlVal::Num(x) => Some(*x),
            _ => None,
        }
    }
}

/// One `[[gate]]` table: keys in file order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TomlTable {
    pub entries: Vec<(String, TomlVal)>,
}

impl TomlTable {
    pub fn get(&self, key: &str) -> Option<&TomlVal> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(TomlVal::as_str)
    }

    pub fn get_num(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(TomlVal::as_num)
    }
}

/// Parses a gate file: a sequence of `[[name]]` tables. Top-level keys
/// before the first header are rejected (gates are always tables), and
/// duplicate keys within one table are an error.
pub fn parse_tables(text: &str) -> Result<Vec<(String, TomlTable)>, String> {
    let mut tables: Vec<(String, TomlTable)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let at = |msg: String| format!("line {lineno}: {msg}");
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(h) = line.strip_prefix("[[") {
            let Some(name) = h.strip_suffix("]]") else {
                return Err(at(format!("malformed table header {line:?}")));
            };
            tables.push((name.trim().to_owned(), TomlTable::default()));
            continue;
        }
        if line.starts_with('[') {
            return Err(at(format!(
                "plain [table] headers are not supported, use [[...]]: {line:?}"
            )));
        }
        let Some(eq) = line.find('=') else {
            return Err(at(format!("expected key = value, got {line:?}")));
        };
        let key = line[..eq].trim();
        if key.is_empty()
            || !key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(at(format!("bad key {key:?} (bare keys only)")));
        }
        let value = parse_value(line[eq + 1..].trim()).map_err(&at)?;
        let Some((_, table)) = tables.last_mut() else {
            return Err(at("key/value before the first [[table]] header".into()));
        };
        if table.get(key).is_some() {
            return Err(at(format!("duplicate key {key:?}")));
        }
        table.entries.push((key.to_owned(), value));
    }
    Ok(tables)
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut quote: Option<u8> = None;
    for (i, &b) in bytes.iter().enumerate() {
        match quote {
            Some(q) => {
                if b == q && (q != b'"' || bytes[..i].last() != Some(&b'\\')) {
                    quote = None;
                }
            }
            None => match b {
                b'"' | b'\'' => quote = Some(b),
                b'#' => return &line[..i],
                _ => {}
            },
        }
    }
    line
}

fn parse_value(text: &str) -> Result<TomlVal, String> {
    if text.is_empty() {
        return Err("missing value".into());
    }
    if text == "true" {
        return Ok(TomlVal::Bool(true));
    }
    if text == "false" {
        return Ok(TomlVal::Bool(false));
    }
    if text.starts_with('"') || text.starts_with('\'') {
        let (s, rest) = parse_string(text)?;
        if !rest.trim().is_empty() {
            return Err(format!("trailing content after string: {rest:?}"));
        }
        return Ok(TomlVal::Str(s));
    }
    if let Some(body) = text.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err("arrays must open and close on one line".into());
        };
        let mut items = Vec::new();
        let mut rest = body.trim();
        while !rest.is_empty() {
            let (s, after) = parse_string(rest)?;
            items.push(s);
            rest = after.trim_start();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r.trim_start();
            } else if !rest.is_empty() {
                return Err(format!("expected ',' between array items at {rest:?}"));
            }
        }
        return Ok(TomlVal::StrArr(items));
    }
    text.replace('_', "")
        .parse::<f64>()
        .map(TomlVal::Num)
        .map_err(|_| format!("unsupported value {text:?}"))
}

/// Parses one leading string literal, returning it and the remainder.
fn parse_string(text: &str) -> Result<(String, &str), String> {
    let bytes = text.as_bytes();
    match bytes.first() {
        Some(b'\'') => {
            let Some(end) = text[1..].find('\'') else {
                return Err("unterminated literal string".into());
            };
            Ok((text[1..1 + end].to_owned(), &text[end + 2..]))
        }
        Some(b'"') => {
            let mut out = String::new();
            let mut chars = text[1..].char_indices();
            while let Some((i, c)) = chars.next() {
                match c {
                    '"' => return Ok((out, &text[1 + i + 1..])),
                    '\\' => match chars.next() {
                        Some((_, 'n')) => out.push('\n'),
                        Some((_, 't')) => out.push('\t'),
                        Some((_, 'r')) => out.push('\r'),
                        Some((_, '"')) => out.push('"'),
                        Some((_, '\\')) => out.push('\\'),
                        Some((_, other)) => return Err(format!("bad escape \\{other}")),
                        None => return Err("dangling backslash".into()),
                    },
                    c => out.push(c),
                }
            }
            Err("unterminated basic string".into())
        }
        _ => Err(format!("expected a string at {text:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_gate_shaped_files() {
        let text = r#"
# Committed robustness gates.
[[gate]]
name = "heavy-drain-p99"          # sessionize heavy episodes
source = "report"
kind = "sessionize"
where = "heavy > 0"               # the predicate
metric = "p99_len"
op = "<="
threshold = 4
tolerance = 0.5

[[gate]]
name = "funnel"
steps = ["heavy > 0", "balanced and heavy == 0"]
window = 5
enabled = true
note = 'literal # not a comment'
"#;
        let tables = parse_tables(text).unwrap();
        assert_eq!(tables.len(), 2);
        let (h, g) = &tables[0];
        assert_eq!(h, "gate");
        assert_eq!(g.get_str("name"), Some("heavy-drain-p99"));
        assert_eq!(g.get_str("where"), Some("heavy > 0"));
        assert_eq!(g.get_num("threshold"), Some(4.0));
        assert_eq!(g.get_num("tolerance"), Some(0.5));
        let (_, g) = &tables[1];
        assert_eq!(
            g.get("steps"),
            Some(&TomlVal::StrArr(vec![
                "heavy > 0".into(),
                "balanced and heavy == 0".into()
            ]))
        );
        assert_eq!(g.get_num("window"), Some(5.0));
        assert_eq!(g.get("enabled"), Some(&TomlVal::Bool(true)));
        assert_eq!(g.get_str("note"), Some("literal # not a comment"));
    }

    #[test]
    fn rejects_what_it_does_not_support() {
        assert!(parse_tables("key = 1\n").is_err()); // before any header
        assert!(parse_tables("[table]\n").is_err());
        assert!(parse_tables("[[g]]\nk = 1999-01-01\n").is_err());
        assert!(parse_tables("[[g]]\nk = [1, 2]\n").is_err());
        assert!(parse_tables("[[g]]\nk = \"open\n").is_err());
        assert!(parse_tables("[[g]]\nk = 1\nk = 2\n").is_err());
        assert!(parse_tables("[[g]]\nnot a pair\n").is_err());
        let err = parse_tables("[[g]]\n\nbad!key = 1\n").unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
    }
}
