//! The three behavioral primitives: `sessionize`, `window_funnel`,
//! `sequence_match` — modeled on the ClickHouse/DuckDB behavioral-analytics
//! functions of the same names, specialized to proxbal's epoch series and
//! virtual-time trace events.
//!
//! All three are pure functions of their input slices: no clocks, no
//! randomness, no allocation-order dependence — a prerequisite for gate
//! reports that are byte-identical at any `--threads` setting.

/// One maximal run of consecutive rows where the session predicate held.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Session {
    /// First row index of the run.
    pub start: usize,
    /// Last row index of the run (inclusive).
    pub end: usize,
    /// Rows in the run (`end - start + 1`).
    pub len: usize,
    /// Maximum of the peak column over the run (0.0 when no peak column).
    pub peak: f64,
}

/// Groups consecutive `true` rows of `active` into sessions. `peak`, when
/// given, must be the same length; each session records its maximum.
///
/// This is the epoch-series analogue of sessionization by inactivity gap:
/// a heavy-load *episode* is a maximal run of epochs with `heavy > 0`, and
/// its `len` is the time-to-rebalance the gates assert on.
pub fn sessionize(active: &[bool], peak: Option<&[f64]>) -> Vec<Session> {
    if let Some(p) = peak {
        assert_eq!(p.len(), active.len(), "peak column length mismatch");
    }
    let mut out = Vec::new();
    let mut open: Option<(usize, f64)> = None;
    for (i, &on) in active.iter().enumerate() {
        let x = peak.map_or(0.0, |p| p[i]);
        match (&mut open, on) {
            (None, true) => open = Some((i, x)),
            (Some((_, best)), true) => {
                if x > *best {
                    *best = x;
                }
            }
            (Some((start, best)), false) => {
                out.push(Session {
                    start: *start,
                    end: i - 1,
                    len: i - *start,
                    peak: *best,
                });
                open = None;
            }
            (None, false) => {}
        }
    }
    if let Some((start, best)) = open {
        out.push(Session {
            start,
            end: active.len() - 1,
            len: active.len() - start,
            peak: best,
        });
    }
    out
}

/// Outcome of a windowed funnel over one event stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FunnelOutcome {
    /// Funnel instances opened (step 1 observed).
    pub entered: usize,
    /// Instances that reached the final step within the window.
    pub completed: usize,
    /// Deepest step any instance reached (1-based; 0 = never entered).
    pub deepest: usize,
}

impl FunnelOutcome {
    /// `completed / entered`; 1.0 when nothing entered (a funnel that never
    /// opens cannot be said to have leaked — gate on `entered` separately
    /// if emptiness itself is a failure).
    pub fn completion(&self) -> f64 {
        if self.entered == 0 {
            1.0
        } else {
            self.completed as f64 / self.entered as f64
        }
    }

    /// Merges outcomes from independent streams (e.g. per-track funnels).
    pub fn merge(&mut self, other: FunnelOutcome) {
        self.entered += other.entered;
        self.completed += other.completed;
        self.deepest = self.deepest.max(other.deepest);
    }
}

/// Ordered step matching within a virtual-time window, over events sorted
/// by timestamp. Each event is `(ts, step_mask)` where bit `i` of the mask
/// means the event satisfies step `i+1`.
///
/// Semantics (single active instance, ClickHouse `windowFunnel`-style):
/// an instance opens when step 1 matches and no instance is active; each
/// subsequent event within `window` of the open can advance it by at most
/// one level; reaching `steps` completes and closes it; an event past the
/// window closes it unfinished (and may itself open the next instance).
/// Events are processed in slice order, so equal-timestamp ordering is the
/// deterministic file order of the trace.
pub fn window_funnel(events: &[(u64, u32)], steps: usize, window: u64) -> FunnelOutcome {
    assert!((1..=32).contains(&steps), "funnel needs 1..=32 steps");
    let mut out = FunnelOutcome::default();
    let mut active: Option<(u64, usize)> = None; // (open ts, levels done)
    for &(ts, mask) in events {
        if let Some((start, _)) = active {
            if ts.saturating_sub(start) > window {
                active = None; // expired unfinished; `entered` already counted
            }
        }
        match &mut active {
            Some((_, level)) => {
                if mask & (1 << *level) != 0 {
                    *level += 1;
                    out.deepest = out.deepest.max(*level);
                    if *level == steps {
                        out.completed += 1;
                        active = None;
                    }
                }
            }
            None => {
                if mask & 1 != 0 {
                    out.entered += 1;
                    out.deepest = out.deepest.max(1);
                    if steps == 1 {
                        out.completed += 1;
                    } else {
                        active = Some((ts, 1));
                    }
                }
            }
        }
    }
    out
}

/// One token of a sequence pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PatTok {
    /// `(?N)` — the next matched row must satisfy condition `N` (1-based in
    /// the pattern syntax, 0-based here).
    Cond(usize),
    /// `(?t<=K)` / `(?t<K)` / `(?t>=K)` / `(?t>K)` — constrains the
    /// timestamp gap between the adjacent condition matches.
    Gap(GapOp, u64),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GapOp {
    Le,
    Lt,
    Ge,
    Gt,
}

impl GapOp {
    fn holds(self, gap: u64, k: u64) -> bool {
        match self {
            GapOp::Le => gap <= k,
            GapOp::Lt => gap < k,
            GapOp::Ge => gap >= k,
            GapOp::Gt => gap > k,
        }
    }

    /// Whether a larger gap can never satisfy the constraint — lets the
    /// matcher stop scanning once timestamps run past an upper bound.
    fn upper_bounded(self) -> bool {
        matches!(self, GapOp::Le | GapOp::Lt)
    }
}

/// Parses a pattern like `"(?1)(?t<=3)(?2)(?2)"` into tokens. `n_conds` is
/// the number of available conditions; references outside `1..=n_conds`
/// are rejected, as are leading/trailing/doubled time constraints.
pub fn parse_pattern(text: &str, n_conds: usize) -> Result<Vec<PatTok>, String> {
    let mut toks = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let Some(stripped) = rest.strip_prefix("(?") else {
            return Err(format!("expected '(?' at {rest:?}"));
        };
        let Some(close) = stripped.find(')') else {
            return Err("unclosed '(?' group".into());
        };
        let body = &stripped[..close];
        rest = &stripped[close + 1..];
        if let Some(cond_text) = body.strip_prefix('t') {
            let (op, num) = if let Some(n) = cond_text.strip_prefix("<=") {
                (GapOp::Le, n)
            } else if let Some(n) = cond_text.strip_prefix(">=") {
                (GapOp::Ge, n)
            } else if let Some(n) = cond_text.strip_prefix('<') {
                (GapOp::Lt, n)
            } else if let Some(n) = cond_text.strip_prefix('>') {
                (GapOp::Gt, n)
            } else {
                return Err(format!("bad time constraint (?t{cond_text})"));
            };
            let k: u64 = num
                .trim()
                .parse()
                .map_err(|_| format!("bad time bound {num:?}"))?;
            match toks.last() {
                Some(PatTok::Cond(_)) => toks.push(PatTok::Gap(op, k)),
                _ => return Err("time constraint must follow a condition".into()),
            }
        } else {
            let n: usize = body
                .trim()
                .parse()
                .map_err(|_| format!("bad condition reference (?{body})"))?;
            if n == 0 || n > n_conds {
                return Err(format!(
                    "condition (?{n}) out of range: {n_conds} condition(s) defined"
                ));
            }
            toks.push(PatTok::Cond(n - 1));
        }
    }
    if toks.is_empty() {
        return Err("empty pattern".into());
    }
    if matches!(toks.last(), Some(PatTok::Gap(_, _))) {
        return Err("pattern ends with a dangling time constraint".into());
    }
    Ok(toks)
}

/// Counts non-overlapping pattern matches over a timestamped row stream.
/// `conds[c][i]` says whether row `i` satisfies condition `c`; `ts[i]` is
/// the row's (non-decreasing) timestamp.
///
/// Matching is leftmost-anchored with backtracking: the first condition
/// must match the anchor row itself; later conditions may skip rows, and
/// when a time constraint rules out one candidate the matcher backtracks
/// to try later anchors for the *previous* step (greedy matching alone is
/// wrong for 3-step patterns whose middle step recurs — pinned by test).
/// After a match, scanning resumes past its last row (non-overlapping).
pub fn sequence_match(conds: &[Vec<bool>], ts: &[u64], pattern: &[PatTok]) -> usize {
    let n = ts.len();
    for c in conds {
        assert_eq!(c.len(), n, "condition mask length mismatch");
    }
    // Split the token stream into steps: each step is a condition plus the
    // gap constraint connecting it to the previous condition.
    let mut steps: Vec<(usize, Option<(GapOp, u64)>)> = Vec::new();
    let mut pending_gap = None;
    for tok in pattern {
        match tok {
            PatTok::Gap(op, k) => pending_gap = Some((*op, *k)),
            PatTok::Cond(c) => {
                steps.push((*c, pending_gap.take()));
            }
        }
    }
    debug_assert!(!steps.is_empty());

    // Backtracking matcher: returns the last matched row index for a match
    // whose step `s` candidates start at `from`, given the previous step
    // matched at `prev`.
    fn match_from(
        steps: &[(usize, Option<(GapOp, u64)>)],
        conds: &[Vec<bool>],
        ts: &[u64],
        s: usize,
        from: usize,
        prev: usize,
    ) -> Option<usize> {
        if s == steps.len() {
            return Some(prev);
        }
        let (c, gap) = steps[s];
        for j in from..ts.len() {
            if let Some((op, k)) = gap {
                let g = ts[j] - ts[prev];
                if !op.holds(g, k) {
                    if op.upper_bounded() && g > k {
                        return None; // gaps only grow from here
                    }
                    continue;
                }
            }
            if conds[c][j] {
                if let Some(end) = match_from(steps, conds, ts, s + 1, j + 1, j) {
                    return Some(end);
                }
            }
        }
        None
    }

    let mut count = 0usize;
    let mut anchor = 0usize;
    while anchor < n {
        let (c0, _) = steps[0];
        if conds[c0][anchor] {
            if let Some(end) = match_from(&steps, conds, ts, 1, anchor + 1, anchor) {
                count += 1;
                anchor = end + 1;
                continue;
            }
        }
        anchor += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessionize_finds_runs_and_peaks() {
        let active = [false, true, true, false, true, false, true];
        let peak = [0.0, 3.0, 5.0, 0.0, 2.0, 0.0, 7.0];
        let s = sessionize(&active, Some(&peak));
        assert_eq!(
            s,
            vec![
                Session {
                    start: 1,
                    end: 2,
                    len: 2,
                    peak: 5.0
                },
                Session {
                    start: 4,
                    end: 4,
                    len: 1,
                    peak: 2.0
                },
                Session {
                    start: 6,
                    end: 6,
                    len: 1,
                    peak: 7.0
                },
            ]
        );
        // Open run at end of series; no peak column.
        let s = sessionize(&[true, true], None);
        assert_eq!(
            s,
            vec![Session {
                start: 0,
                end: 1,
                len: 2,
                peak: 0.0
            }]
        );
        assert!(sessionize(&[], None).is_empty());
        assert!(sessionize(&[false, false], None).is_empty());
    }

    #[test]
    fn funnel_basic_completion_and_expiry() {
        // Steps: 1=A, 2=B, 3=C.
        const A: u32 = 1;
        const B: u32 = 2;
        const C: u32 = 4;
        // Complete in-window instance, then one that expires after A.
        let events = [(0, A), (3, B), (5, C), (10, A), (100, B)];
        let out = window_funnel(&events, 3, 8);
        assert_eq!(
            out,
            FunnelOutcome {
                entered: 2,
                completed: 1,
                deepest: 3
            }
        );
        assert_eq!(out.completion(), 0.5);

        // Expiring event re-opens immediately when it matches step 1.
        let events = [(0, A), (50, A), (51, B)];
        let out = window_funnel(&events, 2, 10);
        assert_eq!(
            out,
            FunnelOutcome {
                entered: 2,
                completed: 1,
                deepest: 2
            }
        );

        // One event advances at most one level even if it matches several.
        let events = [(0, A), (1, B | C)];
        let out = window_funnel(&events, 3, 10);
        assert_eq!(out.completed, 0);
        assert_eq!(out.deepest, 2);

        // Single-step funnel: every match completes instantly.
        let out = window_funnel(&[(0, A), (5, A)], 1, 0);
        assert_eq!(
            out,
            FunnelOutcome {
                entered: 2,
                completed: 2,
                deepest: 1
            }
        );

        // Empty stream: vacuous 100% completion.
        let out = window_funnel(&[], 2, 5);
        assert_eq!(out.entered, 0);
        assert_eq!(out.completion(), 1.0);
    }

    #[test]
    fn funnel_out_of_window_step_does_not_advance() {
        const A: u32 = 1;
        const B: u32 = 2;
        let out = window_funnel(&[(0, A), (20, B)], 2, 10);
        assert_eq!(
            out,
            FunnelOutcome {
                entered: 1,
                completed: 0,
                deepest: 1
            }
        );
    }

    fn masks(rows: &[(bool, bool, bool)]) -> Vec<Vec<bool>> {
        vec![
            rows.iter().map(|r| r.0).collect(),
            rows.iter().map(|r| r.1).collect(),
            rows.iter().map(|r| r.2).collect(),
        ]
    }

    #[test]
    fn sequence_counts_nonoverlapping_matches() {
        let pat = parse_pattern("(?1)(?2)", 2).unwrap();
        let rows = [
            (true, false, false),
            (false, true, false),
            (true, false, false),
            (false, true, false),
        ];
        let ts = [0, 1, 2, 3];
        assert_eq!(sequence_match(&masks(&rows), &ts, &pat), 2);
    }

    #[test]
    fn sequence_time_constraints() {
        // "no emergency followed by another within 1 epoch, three in a row".
        let pat = parse_pattern("(?1)(?t<=1)(?1)(?t<=1)(?1)", 1).unwrap();
        let e = |idx: &[usize], n: usize| -> Vec<Vec<bool>> {
            vec![(0..n).map(|i| idx.contains(&i)).collect()]
        };
        let ts: Vec<u64> = (0..8).collect();
        // Adjacent pairs only: no triple.
        assert_eq!(sequence_match(&e(&[1, 2, 4, 5], 8), &ts, &pat), 0);
        // One triple.
        assert_eq!(sequence_match(&e(&[3, 4, 5], 8), &ts, &pat), 1);
        // Five consecutive = one non-overlapping triple, not two.
        assert_eq!(sequence_match(&e(&[1, 2, 3, 4, 5], 8), &ts, &pat), 1);
    }

    #[test]
    fn sequence_backtracks_past_greedy_trap() {
        // Pattern (?1)(?2)(?t<=1)(?3) over: 1@0, 2@1, 2@9, 3@10.
        // Greedy matching binds (?2) to ts=1 and fails the (?t<=1) to 3@10;
        // the correct match uses 2@9.
        let pat = parse_pattern("(?1)(?2)(?t<=1)(?3)", 3).unwrap();
        let rows = [
            (true, false, false),
            (false, true, false),
            (false, true, false),
            (false, false, true),
        ];
        let ts = [0, 1, 9, 10];
        assert_eq!(sequence_match(&masks(&rows), &ts, &pat), 1);
    }

    #[test]
    fn sequence_gap_lower_bounds() {
        let pat = parse_pattern("(?1)(?t>=5)(?2)", 2).unwrap();
        let rows = [
            (true, false, false),
            (false, true, false), // too close (gap 1)
            (false, true, false), // far enough (gap 6)
        ];
        let ts = [0, 1, 6];
        assert_eq!(sequence_match(&masks(&rows), &ts, &pat), 1);
    }

    #[test]
    fn pattern_parse_errors() {
        assert!(parse_pattern("", 1).is_err());
        assert!(parse_pattern("(?0)", 1).is_err());
        assert!(parse_pattern("(?2)", 1).is_err());
        assert!(parse_pattern("(?t<=3)(?1)", 1).is_err());
        assert!(parse_pattern("(?1)(?t<=3)", 1).is_err());
        assert!(parse_pattern("(?1)(?t~3)(?1)", 1).is_err());
        assert!(parse_pattern("bogus", 1).is_err());
        assert_eq!(
            parse_pattern("(?1)(?t<=3)(?2)", 2).unwrap(),
            vec![PatTok::Cond(0), PatTok::Gap(GapOp::Le, 3), PatTok::Cond(1)]
        );
    }
}
