//! Property tests for the deterministic chunked fold: for *any*
//! associative (not necessarily commutative) merge, the result must be
//! invariant to both the chunk size and the thread count — it always
//! equals the serial left fold.

use proptest::prelude::*;
use proxbal_parallel::{chunk_ranges, fold_chunked, map_chunked, map_indexed};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A 2×2 matrix over wrapping u64 arithmetic: multiplication is
/// associative but **not** commutative, so any reassociation or reordering
/// the engine sneaks in shows up as a different product.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Mat([u64; 4]);

impl Mat {
    fn mul(self, o: Mat) -> Mat {
        let a = self.0;
        let b = o.0;
        Mat([
            a[0].wrapping_mul(b[0])
                .wrapping_add(a[1].wrapping_mul(b[2])),
            a[0].wrapping_mul(b[1])
                .wrapping_add(a[1].wrapping_mul(b[3])),
            a[2].wrapping_mul(b[0])
                .wrapping_add(a[3].wrapping_mul(b[2])),
            a[2].wrapping_mul(b[1])
                .wrapping_add(a[3].wrapping_mul(b[3])),
        ])
    }
}

fn mat_for(seed: u64, i: usize) -> Mat {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64);
    Mat([rng.gen(), rng.gen(), rng.gen(), rng.gen()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_fold_invariant_to_chunking_and_threads(seed in 0u64..1000, len in 1usize..80) {
        let serial = (1..len).fold(mat_for(seed, 0), |acc, i| acc.mul(mat_for(seed, i)));
        // Chunk sizes derived from the seed, including degenerate ones.
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..4 {
            let chunk = 1 + rng.gen::<usize>() % (len + 8);
            for threads in [1usize, 2, 3, 8] {
                let folded = fold_chunked(
                    len,
                    chunk,
                    threads,
                    |i| mat_for(seed, i),
                    |acc: &mut Mat, m| *acc = acc.mul(m),
                )
                .unwrap();
                prop_assert_eq!(folded, serial, "chunk {}, {} threads", chunk, threads);
            }
        }
    }

    #[test]
    fn prop_noncommutative_string_fold_matches_serial(seed in 0u64..500, len in 0usize..60) {
        let piece = |i: usize| {
            let mut rng = StdRng::seed_from_u64(seed ^ (i as u64) << 17);
            format!("{:x}.", rng.gen::<u32>() & 0xfff)
        };
        let serial: String = (0..len).map(piece).collect();
        for (chunk, threads) in [(1, 8), (2, 2), (7, 3), (64, 8)] {
            let folded = fold_chunked(
                len,
                chunk,
                threads,
                piece,
                |acc: &mut String, s| acc.push_str(&s),
            );
            match folded {
                Some(s) => prop_assert_eq!(&s, &serial, "chunk {}, {} threads", chunk, threads),
                None => prop_assert_eq!(len, 0),
            }
        }
    }

    #[test]
    fn prop_chunk_ranges_partition(len in 0usize..200, chunk in 1usize..40) {
        let ranges = chunk_ranges(len, chunk);
        let mut covered = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, covered, "contiguous");
            prop_assert!(r.end > r.start, "non-empty");
            prop_assert!(r.end - r.start <= chunk, "bounded");
            covered = r.end;
        }
        prop_assert_eq!(covered, len, "exhaustive");
    }

    #[test]
    fn prop_map_chunked_flattens_to_serial(seed in 0u64..500, len in 0usize..120) {
        let item = |i: usize| (seed ^ i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let serial: Vec<u64> = (0..len).map(item).collect();
        for (chunk, threads) in [(1, 2), (3, 8), (17, 3), (256, 8)] {
            let flat: Vec<u64> =
                map_chunked(len, chunk, threads, |r| r.map(item).collect::<Vec<_>>())
                    .into_iter()
                    .flatten()
                    .collect();
            prop_assert_eq!(&flat, &serial, "chunk {}, {} threads", chunk, threads);
        }
    }

    #[test]
    fn prop_map_indexed_rng_jobs_thread_invariant(seed in 0u64..200) {
        let job = |i: usize| {
            let mut rng = StdRng::seed_from_u64(seed ^ i as u64);
            (0..8).fold(0u64, |acc, _| acc.wrapping_add(rng.gen::<u64>()))
        };
        let serial = map_indexed(24, 1, job);
        for threads in [2, 5, 16] {
            prop_assert_eq!(map_indexed(24, threads, job), serial.clone(), "{} threads", threads);
        }
    }
}
