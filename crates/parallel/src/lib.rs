//! Deterministic parallel execution engine.
//!
//! Everything in this crate obeys one contract: **the output is a pure
//! function of the inputs, never of the thread count or the claim order.**
//! Jobs are claimed dynamically from a shared counter, but each job is a
//! pure function of its *index* (seeds derive from the index, never from
//! thread identity) and every result lands in its own slot. The returned
//! vector — and anything folded from it in index order — is therefore
//! bit-identical regardless of `threads`.
//!
//! Two families of helpers build on that:
//!
//! - [`map_indexed`] / [`map_items`] (and their `_traced` variants): the
//!   sweep engine the experiment drivers run on. One job per item, results
//!   in index order, child traces absorbed in index order.
//! - [`map_chunked`] / [`fold_chunked`]: the intra-round engine. Work is
//!   split into **fixed-size chunks whose size is chosen by the caller,
//!   never derived from `threads`** — so the chunk boundaries, the per-chunk
//!   results and the chunk-order fold are all identical at any thread
//!   count. [`fold_chunked`] additionally requires only *associativity*
//!   from its merge (not commutativity): partials fold left-to-right within
//!   a chunk and chunks fold left-to-right across, so the result equals the
//!   serial left fold for any chunk size.
//!
//! The crate is dependency-free apart from the in-repo `proxbal-trace`
//! (itself zero-dep), so every layer — `core`, `ktree`, `topology`, `sim` —
//! can parallelize without a dependency cycle through the simulator.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use by default.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Runs `job(i)` for every `i in 0..count` on up to `threads` workers and
/// returns the results in index order.
///
/// `job` must derive all randomness from its index; under that contract
/// the output is independent of `threads`. Panics in a job propagate.
pub fn map_indexed<T, F>(count: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(count);
    if threads <= 1 {
        return (0..count).map(job).collect();
    }

    let next = AtomicUsize::new(0);
    let job = &job;
    let next = &next;
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        local.push((i, job(i)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("sweep worker panicked") {
                slots[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index processed"))
        .collect()
}

/// Maps `job(index, item)` over `items` in parallel, preserving order.
pub fn map_items<I, T, F>(items: &[I], threads: usize, job: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    map_indexed(items.len(), threads, |i| job(i, &items[i]))
}

/// The index ranges a `count`-item workload splits into at `chunk` items
/// per chunk (the last chunk may be short). Pure function of
/// `(count, chunk)` — **never** of the thread count — which is what keeps
/// every chunked helper thread-count-invariant.
pub fn chunk_ranges(count: usize, chunk: usize) -> Vec<Range<usize>> {
    let chunk = chunk.max(1);
    (0..count.div_ceil(chunk))
        .map(|c| c * chunk..((c + 1) * chunk).min(count))
        .collect()
}

/// Runs `job` over the fixed-size [`chunk_ranges`] of `0..count` on up to
/// `threads` workers, returning the per-chunk results in chunk order.
///
/// This is the workhorse of intra-round parallelism: each chunk computes a
/// buffer of per-item results, and the caller drains the returned buffers
/// serially in chunk order — reproducing the exact serial iteration order,
/// including the association of any floating-point folds.
pub fn map_chunked<T, F>(count: usize, chunk: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(count, chunk);
    map_indexed(ranges.len(), threads, |c| job(ranges[c].clone()))
}

/// Parallel left fold with deterministic association: `map(i)` values fold
/// left-to-right *within* each fixed-size chunk, and the chunk partials
/// fold left-to-right *across* chunks. For any **associative** `merge`
/// (commutativity not required) the result equals the serial fold
/// `map(0) ⊕ map(1) ⊕ …` — for every chunk size and every thread count.
///
/// Returns `None` when `count == 0`.
pub fn fold_chunked<T, M, F>(
    count: usize,
    chunk: usize,
    threads: usize,
    map: M,
    merge: F,
) -> Option<T>
where
    T: Send,
    M: Fn(usize) -> T + Sync,
    F: Fn(&mut T, T) + Sync,
{
    let mut partials = map_chunked(count, chunk, threads, |range| {
        let mut acc = map(range.start);
        for i in range.start + 1..range.end {
            merge(&mut acc, map(i));
        }
        acc
    })
    .into_iter();
    let mut acc = partials.next()?;
    for partial in partials {
        merge(&mut acc, partial);
    }
    Some(acc)
}

/// [`map_indexed`] with tracing: each job records into its own child
/// [`Trace`](proxbal_trace::Trace) (enabled iff `parent` is), and the
/// children are absorbed into `parent` **in index order** after the sweep —
/// so the merged event stream, like the results, is bit-identical at any
/// thread count.
///
/// Jobs should [`Trace::relabel`](proxbal_trace::Trace::relabel) their
/// child to a name derived from the index so tracks stay distinguishable.
pub fn map_indexed_traced<T, F>(
    count: usize,
    threads: usize,
    parent: &mut proxbal_trace::Trace,
    job: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut proxbal_trace::Trace) -> T + Sync,
{
    let on = parent.is_enabled();
    let pairs = map_indexed(count, threads, |i| {
        let mut child = proxbal_trace::Trace::new(on, "");
        let out = job(i, &mut child);
        (out, child)
    });
    let mut outs = Vec::with_capacity(count);
    for (out, child) in pairs {
        parent.absorb(child);
        outs.push(out);
    }
    outs
}

/// [`map_items`] with per-job child traces; see [`map_indexed_traced`].
pub fn map_items_traced<I, T, F>(
    items: &[I],
    threads: usize,
    parent: &mut proxbal_trace::Trace,
    job: F,
) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I, &mut proxbal_trace::Trace) -> T + Sync,
{
    map_indexed_traced(items.len(), threads, parent, |i, trace| {
        job(i, &items[i], trace)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_index_order() {
        let out = map_indexed(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        // A job whose output depends only on its index: any thread count
        // must produce the identical vector.
        let job = |i: usize| {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(i as u64);
            (0..50).fold(0u64, |acc, _| acc.wrapping_add(rng.gen::<u64>()))
        };
        let sequential = map_indexed(32, 1, job);
        for threads in [2, 3, 8, 16] {
            assert_eq!(
                map_indexed(32, threads, job),
                sequential,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        assert_eq!(chunk_ranges(0, 4), Vec::<Range<usize>>::new());
        assert_eq!(chunk_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(chunk_ranges(8, 4), vec![0..4, 4..8]);
        assert_eq!(chunk_ranges(3, 0), vec![0..1, 1..2, 2..3]); // chunk clamps to 1
    }

    #[test]
    fn map_chunked_matches_serial_for_any_chunk_and_threads() {
        let serial: Vec<usize> = (0..37).map(|i| i * 7).collect();
        for chunk in [1, 2, 5, 16, 64] {
            for threads in [1, 2, 8] {
                let chunks =
                    map_chunked(37, chunk, threads, |r| r.map(|i| i * 7).collect::<Vec<_>>());
                let flat: Vec<usize> = chunks.into_iter().flatten().collect();
                assert_eq!(flat, serial, "chunk {chunk}, {threads} threads");
            }
        }
    }

    #[test]
    fn fold_chunked_preserves_noncommutative_association() {
        // String concatenation: associative but not commutative. Any chunk
        // size and thread count must reproduce the serial left fold.
        let serial: String = (0..23).map(|i| format!("<{i}>")).collect();
        for chunk in [1, 2, 3, 7, 100] {
            for threads in [1, 2, 8] {
                let folded = fold_chunked(
                    23,
                    chunk,
                    threads,
                    |i| format!("<{i}>"),
                    |acc: &mut String, s| acc.push_str(&s),
                )
                .unwrap();
                assert_eq!(folded, serial, "chunk {chunk}, {threads} threads");
            }
        }
        assert_eq!(
            fold_chunked(0, 4, 2, |i| i, |a: &mut usize, b| *a += b),
            None
        );
    }

    #[test]
    fn traced_sweep_is_thread_count_invariant() {
        use proxbal_trace::Trace;
        let run = |threads: usize| {
            let mut parent = Trace::enabled("sweep");
            let out = map_indexed_traced(12, threads, &mut parent, |i, trace| {
                trace.relabel(&format!("job{i}"));
                trace.span("work", 0, i as u64);
                trace.count("jobs", 1);
                trace.record("index", i as u64);
                i * 3
            });
            (out, parent.to_ndjson(), parent.to_chrome_json())
        };
        let (out1, nd1, ch1) = run(1);
        for threads in [2, 8] {
            let (out, nd, ch) = run(threads);
            assert_eq!(out, out1, "{threads} threads");
            assert_eq!(nd, nd1, "{threads} threads");
            assert_eq!(ch, ch1, "{threads} threads");
        }
        assert_eq!(out1, (0..12).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn traced_sweep_with_disabled_parent_records_nothing() {
        let mut parent = proxbal_trace::Trace::disabled();
        let out = map_indexed_traced(4, 2, &mut parent, |i, trace| {
            trace.span("work", 0, 1);
            assert!(!trace.is_enabled());
            i
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(parent.event_count(), 0);
    }

    #[test]
    fn zero_and_one_item_edge_cases() {
        assert_eq!(map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(1, 4, |i| i + 1), vec![1]);
        let items = ["a", "bb", "ccc"];
        assert_eq!(map_items(&items, 4, |i, s| s.len() + i), vec![1, 3, 5]);
    }
}
