use crate::ring::Ring;
use proxbal_id::{Arc, Id};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Handle of a physical DHT peer (an end host). Dense index; peers are never
/// reused after leaving, so handles stay valid for the life of the network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct PeerId(pub u32);

/// Handle of a virtual server. Dense index, stable across transfers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct VsId(pub u32);

/// Lifecycle state of a physical peer.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PeerState {
    /// Participating in the overlay.
    Alive,
    /// Departed gracefully (virtual servers handed over).
    Left,
    /// Crashed (virtual servers vanished with it).
    Crashed,
}

/// A virtual server: one Chord protocol participant.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VirtualServer {
    /// Self handle.
    pub id: VsId,
    /// Position on the identifier ring (the VS's Chord id).
    pub position: Id,
    /// Physical peer currently hosting this VS.
    pub host: PeerId,
    /// False once the VS has left the ring (host crashed/left and the VS was
    /// not transferred).
    pub alive: bool,
}

/// A physical peer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Peer {
    /// Self handle.
    pub id: PeerId,
    /// Lifecycle state.
    pub state: PeerState,
    /// Virtual servers currently hosted here (alive ones only).
    pub virtual_servers: Vec<VsId>,
    /// Attachment point in the physical topology
    /// (`proxbal_topology::NodeId`), set by the experiment harness;
    /// `u32::MAX` when unattached.
    pub underlay: u32,
}

/// The simulated Chord overlay: peers, virtual servers and the ring.
///
/// All mutating operations keep the invariant that the set of alive virtual
/// servers exactly matches the ring contents, and that every alive VS is
/// listed by its host peer.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ChordNetwork {
    peers: Vec<Peer>,
    vss: Vec<VirtualServer>,
    ring: Ring,
}

impl ChordNetwork {
    /// An empty overlay.
    pub fn new() -> Self {
        ChordNetwork::default()
    }

    /// Read access to the ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Number of peers ever created (including departed ones).
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Ids of currently alive peers.
    pub fn alive_peers(&self) -> Vec<PeerId> {
        self.peers
            .iter()
            .filter(|p| p.state == PeerState::Alive)
            .map(|p| p.id)
            .collect()
    }

    /// Number of alive virtual servers.
    pub fn alive_vs_count(&self) -> usize {
        self.ring.len()
    }

    /// Peer metadata. Panics on an invalid handle.
    pub fn peer(&self, p: PeerId) -> &Peer {
        &self.peers[p.0 as usize]
    }

    /// Virtual server metadata. Panics on an invalid handle.
    pub fn vs(&self, v: VsId) -> &VirtualServer {
        &self.vss[v.0 as usize]
    }

    /// Sets the underlay attachment point of a peer.
    pub fn attach(&mut self, p: PeerId, underlay: u32) {
        self.peers[p.0 as usize].underlay = underlay;
    }

    /// All alive virtual servers of a peer.
    pub fn vss_of(&self, p: PeerId) -> &[VsId] {
        &self.peers[p.0 as usize].virtual_servers
    }

    /// The ownership region of an alive virtual server.
    pub fn region_of(&self, v: VsId) -> Arc {
        let vs = &self.vss[v.0 as usize];
        assert!(vs.alive, "region of dead virtual server {v:?}");
        self.ring.region(vs.position)
    }

    /// Joins a new peer hosting `vs_count` virtual servers at uniformly
    /// random ring positions. Returns the new peer's id.
    pub fn join_peer<R: Rng>(&mut self, vs_count: usize, rng: &mut R) -> PeerId {
        let pid = PeerId(self.peers.len() as u32);
        self.peers.push(Peer {
            id: pid,
            state: PeerState::Alive,
            virtual_servers: Vec::with_capacity(vs_count),
            underlay: u32::MAX,
        });
        for _ in 0..vs_count {
            self.spawn_vs(pid, rng);
        }
        pid
    }

    /// Joins a new peer whose virtual servers sit at the given precomputed
    /// ring positions. Positions that collide with an already-occupied slot
    /// fall back to a fresh draw from `rng`, exactly as [`Self::spawn_vs`]
    /// resamples. Sharded preparation generates position batches per worker
    /// and replays them here in peer order, so the resulting ring is
    /// independent of how the batches were produced.
    pub fn join_peer_at<R: Rng>(&mut self, positions: &[Id], rng: &mut R) -> PeerId {
        let pid = PeerId(self.peers.len() as u32);
        self.peers.push(Peer {
            id: pid,
            state: PeerState::Alive,
            virtual_servers: Vec::with_capacity(positions.len()),
            underlay: u32::MAX,
        });
        for &position in positions {
            if self.spawn_vs_at(pid, position).is_none() {
                self.spawn_vs(pid, rng);
            }
        }
        pid
    }

    /// Adds one more virtual server to an alive peer at a random position
    /// (CFS-style capacity provisioning). Returns its id.
    pub fn spawn_vs<R: Rng>(&mut self, host: PeerId, rng: &mut R) -> VsId {
        loop {
            // Resample on (astronomically unlikely) position collisions.
            if let Some(vid) = self.spawn_vs_at(host, Id::new(rng.gen())) {
                return vid;
            }
        }
    }

    /// Adds a virtual server at an exact ring position. Returns `None` if
    /// the position is already taken.
    pub fn spawn_vs_at(&mut self, host: PeerId, position: Id) -> Option<VsId> {
        assert_eq!(
            self.peers[host.0 as usize].state,
            PeerState::Alive,
            "cannot spawn a virtual server on a non-alive peer"
        );
        let vid = VsId(self.vss.len() as u32);
        if !self.ring.insert(position, vid) {
            return None;
        }
        self.vss.push(VirtualServer {
            id: vid,
            position,
            host,
            alive: true,
        });
        self.peers[host.0 as usize].virtual_servers.push(vid);
        Some(vid)
    }

    /// Graceful departure: the peer's virtual servers leave the ring one by
    /// one (their regions are absorbed by their successors, which is
    /// automatic under successor ownership).
    pub fn leave_peer(&mut self, p: PeerId) {
        self.retire_peer(p, PeerState::Left);
    }

    /// Crash: identical ring effect to a graceful leave in this simulator
    /// (regions are re-absorbed by successors), but routing state held by
    /// *other* virtual servers still points at the dead ones until
    /// stabilization runs — see [`crate::RoutingState`].
    pub fn crash_peer(&mut self, p: PeerId) {
        self.retire_peer(p, PeerState::Crashed);
    }

    fn retire_peer(&mut self, p: PeerId, state: PeerState) {
        let peer = &mut self.peers[p.0 as usize];
        assert_eq!(peer.state, PeerState::Alive, "peer {p:?} is not alive");
        peer.state = state;
        let vss = std::mem::take(&mut peer.virtual_servers);
        for v in vss {
            let vs = &mut self.vss[v.0 as usize];
            vs.alive = false;
            self.ring.remove(vs.position);
        }
    }

    /// Removes a single virtual server from the ring (e.g. CFS-style load
    /// shedding). Its region is absorbed by its successor.
    pub fn drop_vs(&mut self, v: VsId) {
        let vs = &mut self.vss[v.0 as usize];
        assert!(vs.alive, "virtual server {v:?} already dead");
        vs.alive = false;
        self.ring.remove(vs.position);
        let host = vs.host;
        self.peers[host.0 as usize]
            .virtual_servers
            .retain(|&x| x != v);
    }

    /// Transfers a virtual server to another alive peer — the unit of load
    /// movement in the paper (a Chord *leave* followed by a *join* at the
    /// same ring position, so ownership of the region moves wholesale).
    pub fn transfer_vs(&mut self, v: VsId, to: PeerId) {
        assert_eq!(
            self.peers[to.0 as usize].state,
            PeerState::Alive,
            "transfer target {to:?} is not alive"
        );
        let vs = &mut self.vss[v.0 as usize];
        assert!(vs.alive, "cannot transfer dead virtual server {v:?}");
        let from = vs.host;
        if from == to {
            return;
        }
        vs.host = to;
        self.peers[from.0 as usize]
            .virtual_servers
            .retain(|&x| x != v);
        self.peers[to.0 as usize].virtual_servers.push(v);
    }

    /// Splits a virtual server in two: a new virtual server is created at
    /// the midpoint of `v`'s region on the same host, taking over the first
    /// half of the region (Chord ownership splits automatically once the
    /// new position is on the ring). Returns the new virtual server.
    ///
    /// This is the classic remedy (Rao et al.) for a virtual server too
    /// loaded to fit any light node: halve it and place the halves
    /// separately. Panics if the region is too small to split (length < 2).
    pub fn split_vs(&mut self, v: VsId) -> VsId {
        let vs = &self.vss[v.0 as usize];
        assert!(vs.alive, "cannot split dead virtual server {v:?}");
        let host = vs.host;
        let region = self.region_of(v);
        assert!(region.len() >= 2, "region too small to split");
        // The midpoint key: the new VS sits there and owns (start-1, mid].
        let mid = region.start().wrapping_add(region.len() / 2 - 1);
        let vid = VsId(self.vss.len() as u32);
        assert!(
            self.ring.insert(mid, vid),
            "split midpoint collides with an existing virtual server"
        );
        self.vss.push(VirtualServer {
            id: vid,
            position: mid,
            host,
            alive: true,
        });
        self.peers[host.0 as usize].virtual_servers.push(vid);
        vid
    }

    /// The peer owning `key` (via its owning virtual server).
    pub fn owner_peer(&self, key: Id) -> Option<PeerId> {
        self.ring.owner(key).map(|v| self.vss[v.0 as usize].host)
    }

    /// Checks internal consistency; used by tests and debug assertions.
    /// Returns an error description on the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Every ring entry is an alive VS at that position, hosted by an
        // alive peer that lists it.
        for (pos, v) in self.ring.iter() {
            let vs = &self.vss[v.0 as usize];
            if !vs.alive {
                return Err(format!("ring references dead vs {v:?}"));
            }
            if vs.position != pos {
                return Err(format!("vs {v:?} position mismatch"));
            }
            let host = &self.peers[vs.host.0 as usize];
            if host.state != PeerState::Alive {
                return Err(format!("vs {v:?} hosted by non-alive peer"));
            }
            if !host.virtual_servers.contains(&v) {
                return Err(format!("host of {v:?} does not list it"));
            }
        }
        // Every listed VS is alive and on the ring.
        let mut listed = 0;
        for peer in &self.peers {
            for &v in &peer.virtual_servers {
                listed += 1;
                let vs = &self.vss[v.0 as usize];
                if !vs.alive || vs.host != peer.id {
                    return Err(format!("peer {:?} lists invalid vs {v:?}", peer.id));
                }
                if self.ring.at(vs.position) != Some(v) {
                    return Err(format!("vs {v:?} missing from ring"));
                }
            }
        }
        if listed != self.ring.len() {
            return Err(format!(
                "listed vs count {listed} != ring size {}",
                self.ring.len()
            ));
        }
        Ok(())
    }
}
