//! Pastry-style prefix routing over the same virtual-server population.
//!
//! The paper notes its techniques "are applicable or easily adapted to
//! other DHTs such as Pastry and Tapestry" (§4.3). The load-balancing
//! stack only relies on the *ring ownership* abstraction ([`crate::Ring`]);
//! the routing geometry is orthogonal. This module provides the other
//! classic geometry: digit-by-digit prefix routing with a routing table
//! (one row per shared-prefix length, one entry per next digit) and a leaf
//! set, over exactly the same 32-bit identifiers — demonstrating that the
//! balancer's substrate requirements are DHT-agnostic.
//!
//! Identifiers are treated as 8 hexadecimal digits (base 16, as in Pastry's
//! default `b = 4`).

use crate::network::{ChordNetwork, VsId};
use crate::routing::LookupOutcome;
use proxbal_id::Id;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Digits per identifier (8 hex digits cover 32 bits).
pub const DIGITS: usize = 8;
/// Radix (hex digits, Pastry's `b = 4`).
pub const RADIX: usize = 16;
/// Leaf-set half-width (this many clockwise successors are kept; ownership
/// on a successor ring only needs the clockwise side).
pub const LEAF_SET_LEN: usize = 8;

/// The `level`-th hex digit of an identifier, most significant first.
#[inline]
fn digit(id: Id, level: usize) -> usize {
    debug_assert!(level < DIGITS);
    ((id.raw() >> (28 - 4 * level)) & 0xF) as usize
}

/// Length of the shared hex-digit prefix of two identifiers (0..=8).
#[inline]
fn shared_prefix(a: Id, b: Id) -> usize {
    let x = a.raw() ^ b.raw();
    if x == 0 {
        return DIGITS;
    }
    (x.leading_zeros() / 4) as usize
}

/// Per-virtual-server Pastry-like state.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct VsPrefixTable {
    position: Id,
    /// `table[l][d]`: a virtual server whose position shares an `l`-digit
    /// prefix with ours and has digit `d` at level `l`.
    table: Vec<Vec<Option<VsId>>>,
    /// Clockwise neighbours (like Pastry's leaf set; successor-side only,
    /// since ownership is successor-based on this ring).
    leaf_set: Vec<VsId>,
}

/// Prefix-routing state for every alive virtual server.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PrefixRouting {
    tables: HashMap<VsId, VsPrefixTable>,
}

impl PrefixRouting {
    /// Builds prefix-routing tables for every alive virtual server of
    /// `net` from the current ring (a converged Pastry overlay).
    pub fn build(net: &ChordNetwork) -> Self {
        let ring = net.ring();
        let mut tables = HashMap::with_capacity(ring.len());
        for (position, vs) in ring.iter() {
            let mut table = vec![vec![None; RADIX]; DIGITS];
            for (l, row) in table.iter_mut().enumerate() {
                for (d, slot) in row.iter_mut().enumerate() {
                    if d == digit(position, l) {
                        continue; // that's our own digit at this level
                    }
                    // Representative key: our l-digit prefix, digit d, zeros.
                    let shift = 28 - 4 * l;
                    let prefix_mask = !((1u64 << (shift + 4)) - 1) as u32;
                    let key = Id::new((position.raw() & prefix_mask) | ((d as u32) << shift));
                    if let Some((cand_pos, cand)) = ring.owner_entry(key) {
                        // Accept only a genuine prefix match (the owner may
                        // wrap around into a different prefix region).
                        if shared_prefix(cand_pos, key) > l {
                            *slot = Some(cand);
                        }
                    }
                }
            }
            let leaf_set = ring
                .successors_of(position, LEAF_SET_LEN)
                .into_iter()
                .map(|(_, v)| v)
                .collect();
            tables.insert(
                vs,
                VsPrefixTable {
                    position,
                    table,
                    leaf_set,
                },
            );
        }
        PrefixRouting { tables }
    }

    /// Number of virtual servers with tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True iff no tables exist.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Prefix lookup of `key` from `from`: each hop routes to an entry
    /// sharing a strictly longer prefix with the key; once inside the leaf
    /// set's reach, the leaf set finishes numerically. Dead entries count
    /// as timeouts (the leaf set is the fallback).
    pub fn lookup(&self, net: &ChordNetwork, from: VsId, key: Id) -> LookupOutcome {
        let mut hops = 0u32;
        let mut timeouts = 0u32;
        let hop_limit = (2 * DIGITS + 2 * LEAF_SET_LEN) as u32;

        let mut cur = from;
        loop {
            if hops > hop_limit {
                return LookupOutcome {
                    result: None,
                    hops,
                    timeouts,
                };
            }
            let Some(table) = self.tables.get(&cur) else {
                return LookupOutcome {
                    result: None,
                    hops,
                    timeouts,
                };
            };
            if net.vs(cur).alive && net.region_of(cur).contains(key) {
                return LookupOutcome {
                    result: Some(cur),
                    hops,
                    timeouts,
                };
            }

            // 1. Routing-table hop: strictly longer shared prefix.
            let l = shared_prefix(table.position, key);
            let mut next: Option<VsId> = None;
            if l < DIGITS {
                if let Some(entry) = table.table[l][digit(key, l)] {
                    if net.vs(entry).alive {
                        next = Some(entry);
                    } else {
                        timeouts += 1;
                    }
                }
            }

            // 2a. Leaf-set ownership check: the leaf set holds consecutive
            //     clockwise successors, so the first alive leaf at or past
            //     the key (without skipping it) is the key's owner.
            let my_dist = table.position.distance_to(key);
            if next.is_none() {
                for &leaf in &table.leaf_set {
                    if !net.vs(leaf).alive {
                        timeouts += 1;
                        continue;
                    }
                    let lp = net.vs(leaf).position;
                    if table.position.distance_to(lp) >= my_dist {
                        return LookupOutcome {
                            result: Some(leaf),
                            hops: hops + 1,
                            timeouts,
                        };
                    }
                    break; // first alive leaf is still before the key
                }
            }

            // 2b. Numeric fallback (Pastry's rule): among everything this
            //     node knows — all routing-table entries plus the leaf set —
            //     hop to the alive node that gets closest to the key without
            //     passing it. Row 0 alone spans the whole ring, so progress
            //     is geometric even when the exact prefix entry is missing.
            if next.is_none() {
                let mut best_remaining = my_dist;
                let candidates = table
                    .table
                    .iter()
                    .flatten()
                    .flatten()
                    .chain(table.leaf_set.iter());
                for &cand in candidates {
                    if !net.vs(cand).alive {
                        continue; // timeouts counted where entries are tried
                    }
                    let cp = net.vs(cand).position;
                    // Stay strictly behind (or exactly at) the key.
                    let advance = table.position.distance_to(cp);
                    if advance == 0 || advance > my_dist {
                        continue;
                    }
                    let remaining = cp.distance_to(key);
                    if remaining < best_remaining {
                        best_remaining = remaining;
                        next = Some(cand);
                    }
                }
            }

            match next {
                Some(n) if n != cur => {
                    cur = n;
                    hops += 1;
                }
                _ => {
                    return LookupOutcome {
                        result: None,
                        hops,
                        timeouts,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoutingState;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn net_with(peers: usize, vs: usize, seed: u64) -> (ChordNetwork, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = ChordNetwork::new();
        for _ in 0..peers {
            net.join_peer(vs, &mut rng);
        }
        (net, rng)
    }

    #[test]
    fn digits_and_prefixes() {
        let a = Id::new(0xABCD_EF01);
        assert_eq!(digit(a, 0), 0xA);
        assert_eq!(digit(a, 1), 0xB);
        assert_eq!(digit(a, 7), 0x1);
        assert_eq!(shared_prefix(a, a), DIGITS);
        assert_eq!(shared_prefix(a, Id::new(0xABCD_EF00)), 7);
        assert_eq!(shared_prefix(a, Id::new(0xBBCD_EF01)), 0);
    }

    #[test]
    fn prefix_lookup_finds_owner() {
        let (net, mut rng) = net_with(64, 4, 1);
        let routing = PrefixRouting::build(&net);
        assert_eq!(routing.len(), 256);
        let sources: Vec<VsId> = net.ring().iter().map(|(_, v)| v).collect();
        for _ in 0..300 {
            let key = Id::new(rng.gen());
            let from = sources[rng.gen_range(0..sources.len())];
            let out = routing.lookup(&net, from, key);
            assert_eq!(out.result, net.ring().owner(key), "from {from:?} key {key}");
            assert_eq!(out.timeouts, 0);
        }
    }

    #[test]
    fn prefix_hops_are_logarithmic_base_16() {
        let (net, mut rng) = net_with(256, 4, 2); // 1024 VSs
        let routing = PrefixRouting::build(&net);
        let sources: Vec<VsId> = net.ring().iter().map(|(_, v)| v).collect();
        let mut total = 0u64;
        let trials = 400;
        for _ in 0..trials {
            let key = Id::new(rng.gen());
            let from = sources[rng.gen_range(0..sources.len())];
            let out = routing.lookup(&net, from, key);
            assert!(out.result.is_some());
            total += u64::from(out.hops);
        }
        let avg = total as f64 / f64::from(trials);
        // log16(1024) = 2.5; allow the leaf-set tail.
        assert!(avg < 6.0, "average prefix hops {avg:.2}");
    }

    #[test]
    fn prefix_routing_beats_finger_routing_on_hops() {
        // Pastry's base-16 digits resolve 4 bits per hop vs Chord's ~1:
        // average hop counts must be clearly lower on the same overlay.
        let (net, mut rng) = net_with(256, 4, 3);
        let prefix = PrefixRouting::build(&net);
        let chord = RoutingState::build(&net);
        let sources: Vec<VsId> = net.ring().iter().map(|(_, v)| v).collect();
        let (mut ph, mut ch) = (0u64, 0u64);
        let trials = 300;
        for _ in 0..trials {
            let key = Id::new(rng.gen());
            let from = sources[rng.gen_range(0..sources.len())];
            ph += u64::from(prefix.lookup(&net, from, key).hops);
            ch += u64::from(chord.lookup(&net, from, key).hops);
        }
        assert!(
            ph * 3 < ch * 2,
            "prefix avg {:.2} should be well below finger avg {:.2}",
            ph as f64 / f64::from(trials),
            ch as f64 / f64::from(trials)
        );
    }

    #[test]
    fn prefix_lookup_survives_moderate_churn_via_leaf_sets() {
        let (mut net, mut rng) = net_with(96, 3, 4);
        let routing = PrefixRouting::build(&net);
        for p in net.alive_peers().into_iter().take(9) {
            net.crash_peer(p);
        }
        let sources: Vec<VsId> = net.ring().iter().map(|(_, v)| v).collect();
        let mut ok = 0;
        let trials = 200;
        for _ in 0..trials {
            let key = Id::new(rng.gen());
            let from = sources[rng.gen_range(0..sources.len())];
            let out = routing.lookup(&net, from, key);
            if out.result == net.ring().owner(key) {
                ok += 1;
            }
        }
        assert!(ok * 10 >= trials * 8, "success {ok}/{trials}");
    }

    #[test]
    fn single_vs_ring_prefix_lookup() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = ChordNetwork::new();
        net.join_peer(1, &mut rng);
        let routing = PrefixRouting::build(&net);
        let (_, only) = net.ring().iter().next().unwrap();
        let out = routing.lookup(&net, only, Id::new(42));
        assert_eq!(out.result, Some(only));
        assert_eq!(out.hops, 0);
    }
}
