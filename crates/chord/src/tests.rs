use crate::*;
use proptest::prelude::*;
use proxbal_id::Id;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn net_with(peers: usize, vs_per_peer: usize, seed: u64) -> (ChordNetwork, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = ChordNetwork::new();
    for _ in 0..peers {
        net.join_peer(vs_per_peer, &mut rng);
    }
    (net, rng)
}

#[test]
fn ring_owner_wraps() {
    let mut ring = Ring::new();
    ring.insert(Id::new(100), VsId(0));
    ring.insert(Id::new(200), VsId(1));
    assert_eq!(ring.owner(Id::new(50)), Some(VsId(0)));
    assert_eq!(ring.owner(Id::new(100)), Some(VsId(0))); // inclusive
    assert_eq!(ring.owner(Id::new(101)), Some(VsId(1)));
    assert_eq!(ring.owner(Id::new(201)), Some(VsId(0))); // wraps
    assert_eq!(ring.owner(Id::new(u32::MAX)), Some(VsId(0)));
}

#[test]
fn ring_regions_partition_the_space() {
    let mut ring = Ring::new();
    ring.insert(Id::new(0), VsId(0));
    ring.insert(Id::new(1000), VsId(1));
    ring.insert(Id::new(60000), VsId(2));
    let total: u64 = ring.iter().map(|(p, _)| ring.region(p).len()).sum();
    assert_eq!(total, proxbal_id::RING_SIZE);
    // Region of VS at 1000 is (0, 1000] = [1, 1001).
    let r = ring.region(Id::new(1000));
    assert!(r.contains(Id::new(1)));
    assert!(r.contains(Id::new(1000)));
    assert!(!r.contains(Id::new(0)));
    assert!(!r.contains(Id::new(1001)));
}

#[test]
fn ring_single_vs_owns_everything() {
    let mut ring = Ring::new();
    ring.insert(Id::new(777), VsId(3));
    assert!(ring.region(Id::new(777)).is_full());
    assert_eq!(ring.owner(Id::new(0)), Some(VsId(3)));
}

#[test]
fn ring_duplicate_position_rejected() {
    let mut ring = Ring::new();
    assert!(ring.insert(Id::new(5), VsId(0)));
    assert!(!ring.insert(Id::new(5), VsId(1)));
    assert_eq!(ring.at(Id::new(5)), Some(VsId(0)));
}

#[test]
fn ring_successors_of_walks_clockwise() {
    let mut ring = Ring::new();
    for (i, p) in [10u32, 20, 30, 40].iter().enumerate() {
        ring.insert(Id::new(*p), VsId(i as u32));
    }
    let succs = ring.successors_of(Id::new(20), 3);
    assert_eq!(
        succs.iter().map(|&(_, v)| v).collect::<Vec<_>>(),
        vec![VsId(2), VsId(3), VsId(0)]
    );
    // Asking for more than ring size stops before self.
    let all = ring.successors_of(Id::new(20), 10);
    assert_eq!(all.len(), 3);
}

#[test]
fn join_creates_vss_and_invariants_hold() {
    let (net, _) = net_with(10, 5, 1);
    assert_eq!(net.alive_vs_count(), 50);
    assert_eq!(net.alive_peers().len(), 10);
    net.check_invariants().unwrap();
    for p in net.alive_peers() {
        assert_eq!(net.vss_of(p).len(), 5);
    }
}

#[test]
fn regions_cover_space_after_churn() {
    let (mut net, mut rng) = net_with(20, 3, 2);
    net.leave_peer(PeerId(3));
    net.crash_peer(PeerId(7));
    net.join_peer(4, &mut rng);
    net.check_invariants().unwrap();
    let total: u64 = net
        .ring()
        .iter()
        .map(|(p, _)| net.ring().region(p).len())
        .sum();
    assert_eq!(total, proxbal_id::RING_SIZE);
}

#[test]
fn owner_peer_resolves_to_hosting_peer() {
    let (net, mut rng) = net_with(8, 4, 3);
    for _ in 0..100 {
        let key = Id::new(rng.gen());
        let vs = net.ring().owner(key).unwrap();
        assert_eq!(net.owner_peer(key), Some(net.vs(vs).host));
        assert!(net.region_of(vs).contains(key));
    }
}

#[test]
fn transfer_moves_vs_between_peers() {
    let (mut net, _) = net_with(4, 3, 4);
    let src = PeerId(0);
    let dst = PeerId(1);
    let v = net.vss_of(src)[0];
    let region_before = net.region_of(v);
    net.transfer_vs(v, dst);
    net.check_invariants().unwrap();
    assert_eq!(net.vs(v).host, dst);
    assert_eq!(net.vss_of(src).len(), 2);
    assert_eq!(net.vss_of(dst).len(), 4);
    // Ring position (and thus region) is unchanged by a transfer.
    assert_eq!(net.region_of(v), region_before);
}

#[test]
fn transfer_to_self_is_noop() {
    let (mut net, _) = net_with(2, 2, 5);
    let v = net.vss_of(PeerId(0))[0];
    net.transfer_vs(v, PeerId(0));
    net.check_invariants().unwrap();
    assert_eq!(net.vss_of(PeerId(0)).len(), 2);
}

#[test]
#[should_panic(expected = "not alive")]
fn transfer_to_dead_peer_panics() {
    let (mut net, _) = net_with(3, 2, 6);
    net.crash_peer(PeerId(1));
    let v = net.vss_of(PeerId(0))[0];
    net.transfer_vs(v, PeerId(1));
}

#[test]
fn drop_vs_removes_from_ring() {
    let (mut net, _) = net_with(3, 3, 7);
    let v = net.vss_of(PeerId(2))[1];
    let n_before = net.alive_vs_count();
    net.drop_vs(v);
    net.check_invariants().unwrap();
    assert_eq!(net.alive_vs_count(), n_before - 1);
    assert!(!net.vs(v).alive);
}

#[test]
fn crash_removes_all_peer_vss() {
    let (mut net, _) = net_with(5, 4, 8);
    net.crash_peer(PeerId(2));
    assert_eq!(net.alive_vs_count(), 16);
    assert_eq!(net.alive_peers().len(), 4);
    net.check_invariants().unwrap();
}

#[test]
fn lookup_finds_owner_with_fresh_tables() {
    let (net, mut rng) = net_with(32, 4, 9);
    let routing = RoutingState::build(&net);
    assert_eq!(routing.len(), 128);
    let sources: Vec<VsId> = net.ring().iter().map(|(_, v)| v).collect();
    for _ in 0..200 {
        let key = Id::new(rng.gen());
        let from = sources[rng.gen_range(0..sources.len())];
        let out = routing.lookup(&net, from, key);
        let expect = net.ring().owner(key);
        assert_eq!(out.result, expect, "lookup from {from:?} for {key}");
        assert_eq!(out.timeouts, 0);
    }
}

#[test]
fn lookup_hops_are_logarithmic() {
    let (net, mut rng) = net_with(128, 4, 10);
    let routing = RoutingState::build(&net);
    let sources: Vec<VsId> = net.ring().iter().map(|(_, v)| v).collect();
    let n = sources.len() as f64; // 512 virtual servers
    let bound = 2.0 * n.log2() + 2.0;
    let mut total = 0u64;
    let trials = 300;
    for _ in 0..trials {
        let key = Id::new(rng.gen());
        let from = sources[rng.gen_range(0..sources.len())];
        let out = routing.lookup(&net, from, key);
        assert!(out.result.is_some());
        total += u64::from(out.hops);
    }
    let avg = total as f64 / f64::from(trials);
    assert!(
        avg <= bound,
        "average hops {avg:.1} should be O(log n) (bound {bound:.1})"
    );
}

#[test]
fn lookup_survives_churn_via_successor_lists() {
    let (mut net, mut rng) = net_with(64, 3, 11);
    let mut routing = RoutingState::build(&net);
    // Crash 10% of peers without stabilizing.
    for p in net.alive_peers().into_iter().take(6) {
        net.crash_peer(p);
    }
    let sources: Vec<VsId> = net.ring().iter().map(|(_, v)| v).collect();
    let mut failures = 0;
    let trials = 200;
    for _ in 0..trials {
        let key = Id::new(rng.gen());
        let from = sources[rng.gen_range(0..sources.len())];
        let out = routing.lookup(&net, from, key);
        match out.result {
            Some(v) => assert_eq!(Some(v), net.ring().owner(key)),
            None => failures += 1,
        }
    }
    // Most lookups still succeed (correctly) before repair…
    assert!(failures < trials / 5, "too many failures: {failures}");
    // …and all succeed after stabilization.
    routing.stabilize(&net);
    for _ in 0..trials {
        let key = Id::new(rng.gen());
        let from = sources[rng.gen_range(0..sources.len())];
        let out = routing.lookup(&net, from, key);
        assert_eq!(out.result, net.ring().owner(key));
        assert_eq!(out.timeouts, 0);
    }
}

#[test]
fn stabilize_vs_repairs_single_table() {
    let (mut net, mut rng) = net_with(16, 2, 12);
    let mut routing = RoutingState::build(&net);
    net.join_peer(2, &mut rng);
    let (_, some_vs) = net.ring().iter().next().unwrap();
    routing.stabilize_vs(&net, some_vs);
    // New peer's VSs have no tables yet; stabilize creates them.
    routing.stabilize(&net);
    assert_eq!(routing.len(), net.alive_vs_count());
}

#[test]
fn lookup_single_vs_ring() {
    let mut rng = StdRng::seed_from_u64(13);
    let mut net = ChordNetwork::new();
    net.join_peer(1, &mut rng);
    let routing = RoutingState::build(&net);
    let (_, only) = net.ring().iter().next().unwrap();
    let out = routing.lookup(&net, only, Id::new(12345));
    assert_eq!(out.result, Some(only));
    assert_eq!(out.hops, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_lookup_equals_ring_owner(seed in 0u64..5000, key: u32) {
        let (net, _) = net_with(12, 3, seed);
        let routing = RoutingState::build(&net);
        let (_, from) = net.ring().iter().next().unwrap();
        let out = routing.lookup(&net, from, Id::new(key));
        prop_assert_eq!(out.result, net.ring().owner(Id::new(key)));
    }

    #[test]
    fn prop_invariants_after_random_ops(seed in 0u64..5000, ops in 1usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = ChordNetwork::new();
        net.join_peer(3, &mut rng);
        for _ in 0..ops {
            let alive = net.alive_peers();
            match rng.gen_range(0..4u8) {
                0 => {
                    net.join_peer(rng.gen_range(1..5), &mut rng);
                }
                1 if alive.len() > 1 => {
                    let p = alive[rng.gen_range(0..alive.len())];
                    net.leave_peer(p);
                }
                2 if alive.len() > 1 => {
                    let p = alive[rng.gen_range(0..alive.len())];
                    net.crash_peer(p);
                }
                _ if alive.len() >= 2 => {
                    let from = alive[rng.gen_range(0..alive.len())];
                    let to = alive[rng.gen_range(0..alive.len())];
                    let vss = net.vss_of(from);
                    if !vss.is_empty() && from != to {
                        let v = vss[rng.gen_range(0..vss.len())];
                        net.transfer_vs(v, to);
                    }
                }
                _ => {}
            }
            net.check_invariants().map_err(TestCaseError::fail)?;
        }
        // Regions always partition the full ring when non-empty.
        if net.alive_vs_count() > 0 {
            let total: u64 = net.ring().iter().map(|(p, _)| net.ring().region(p).len()).sum();
            prop_assert_eq!(total, proxbal_id::RING_SIZE);
        }
    }
}

#[test]
fn spawn_vs_at_exact_position_and_collision() {
    let (mut net, _) = net_with(2, 2, 30);
    let v = net.spawn_vs_at(PeerId(0), Id::new(12345)).unwrap();
    assert_eq!(net.vs(v).position, Id::new(12345));
    assert!(net.spawn_vs_at(PeerId(1), Id::new(12345)).is_none());
    net.check_invariants().unwrap();
}

#[test]
fn protocol_join_costs_logarithmic_hops() {
    let (mut net, mut rng) = net_with(64, 4, 31);
    let mut routing = RoutingState::build(&net);
    let bootstrap = net.ring().iter().next().unwrap().1;
    let host = net.join_peer(0, &mut rng); // empty peer, then protocol joins
    let mut total_hops = 0u32;
    for _ in 0..4 {
        let (vs, outcome) = routing
            .join_vs_via_lookup(&mut net, host, bootstrap, &mut rng)
            .expect("join succeeds with fresh tables");
        assert!(net.vs(vs).alive);
        total_hops += outcome.hops;
    }
    net.check_invariants().unwrap();
    let n = net.alive_vs_count() as f64;
    assert!(
        f64::from(total_hops) / 4.0 <= 2.0 * n.log2() + 2.0,
        "avg join hops too high: {}",
        f64::from(total_hops) / 4.0
    );
    // After stabilization the new VSs are fully routable.
    routing.stabilize(&net);
    for _ in 0..50 {
        let key = Id::new(rng.gen());
        let out = routing.lookup(&net, bootstrap, key);
        assert_eq!(out.result, net.ring().owner(key));
    }
}

#[test]
fn split_vs_halves_region_on_same_host() {
    let (mut net, _) = net_with(8, 3, 32);
    let (pos, v) = net.ring().iter().next().unwrap();
    let region = net.ring().region(pos);
    if region.len() < 2 {
        return; // astronomically unlikely with 24 VSs on a 2^32 ring
    }
    let host = net.vs(v).host;
    let before = net.alive_vs_count();
    let new = net.split_vs(v);
    net.check_invariants().unwrap();
    assert_eq!(net.alive_vs_count(), before + 1);
    assert_eq!(net.vs(new).host, host);
    // The two halves partition the original region.
    let r_old = net.region_of(v);
    let r_new = net.region_of(new);
    assert_eq!(r_old.len() + r_new.len(), region.len());
    assert!(!r_old.overlaps(&r_new));
    assert!((r_new.len() as i64 - r_old.len() as i64).abs() <= 1);
}

#[test]
fn count_in_and_vss_in_wrap_correctly() {
    let mut ring = Ring::new();
    ring.insert(Id::new(10), VsId(0));
    ring.insert(Id::new(0xFFFF_FFF0), VsId(1));
    ring.insert(Id::new(500), VsId(2));
    // Wrapping region covering the top and bottom of the ring.
    let wrap = proxbal_id::Arc::from_bounds(Id::new(0xFFFF_FF00), Id::new(100));
    assert_eq!(ring.count_in(&wrap), 2);
    let inside = ring.vss_in(&wrap);
    assert_eq!(inside.len(), 2);
    assert_eq!(inside[0].1, VsId(1)); // clockwise order: high side first
    assert_eq!(inside[1].1, VsId(0));
    // Full and empty regions.
    assert_eq!(ring.count_in(&proxbal_id::Arc::full(Id::ZERO)), 3);
    assert_eq!(ring.count_in(&proxbal_id::Arc::empty(Id::ZERO)), 0);
}

#[test]
fn incremental_stabilization_converges_within_finger_count_rounds() {
    let (mut net, mut rng) = net_with(48, 4, 35);
    let mut routing = RoutingState::build(&net);
    // Heavy churn: crash a third, join replacements.
    for p in net.alive_peers().into_iter().take(16) {
        net.crash_peer(p);
    }
    for _ in 0..16 {
        net.join_peer(4, &mut rng);
    }
    // Incremental rounds only.
    let mut rounds = 0;
    loop {
        let changed = routing.stabilize_round(&net);
        rounds += 1;
        if changed == 0 {
            break;
        }
        assert!(rounds <= 34, "must converge within ~FINGER_COUNT rounds");
    }
    // Converged tables route every lookup correctly with zero timeouts.
    let sources: Vec<VsId> = net.ring().iter().map(|(_, v)| v).collect();
    for _ in 0..100 {
        let key = Id::new(rng.gen());
        let from = sources[rng.gen_range(0..sources.len())];
        let out = routing.lookup(&net, from, key);
        assert_eq!(out.result, net.ring().owner(key));
        assert_eq!(out.timeouts, 0);
    }
}

#[test]
fn incremental_stabilization_improves_lookups_gradually() {
    let (mut net, rng) = net_with(96, 4, 36);
    let mut routing = RoutingState::build(&net);
    for p in net.alive_peers().into_iter().take(32) {
        net.crash_peer(p);
    }
    let success_rate = |routing: &RoutingState, net: &ChordNetwork, seed: u64| -> f64 {
        let mut r = StdRng::seed_from_u64(seed);
        let sources: Vec<VsId> = net.ring().iter().map(|(_, v)| v).collect();
        let mut ok = 0;
        for _ in 0..100 {
            let key = Id::new(r.gen());
            let from = sources[r.gen_range(0..sources.len())];
            if routing.lookup(net, from, key).result == net.ring().owner(key) {
                ok += 1;
            }
        }
        ok as f64 / 100.0
    };
    let before = success_rate(&routing, &net, 1);
    for _ in 0..4 {
        routing.stabilize_round(&net);
    }
    let after_few = success_rate(&routing, &net, 1);
    assert!(
        after_few >= before,
        "stabilization must not hurt: {before} -> {after_few}"
    );
    // Timeouts disappear as fingers get fixed.
    for _ in 0..40 {
        routing.stabilize_round(&net);
    }
    let mut r = StdRng::seed_from_u64(2);
    let sources: Vec<VsId> = net.ring().iter().map(|(_, v)| v).collect();
    for _ in 0..50 {
        let key = Id::new(r.gen());
        let from = sources[r.gen_range(0..sources.len())];
        let out = routing.lookup(&net, from, key);
        assert_eq!(out.timeouts, 0, "all fingers repaired");
    }
    let _ = rng;
}

#[test]
fn stabilize_round_idempotent_when_stable() {
    let (net, _) = net_with(16, 3, 37);
    let mut routing = RoutingState::build(&net);
    // First round may touch finger cursors but finds nothing to change.
    assert_eq!(routing.stabilize_round(&net), 0);
    assert_eq!(routing.stabilize_round(&net), 0);
}
