use crate::network::VsId;
use proxbal_id::{Arc, Id};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The sorted ring of live virtual-server positions.
///
/// Chord's ownership rule: a key `k` belongs to its **successor** — the
/// first virtual server at or after `k` in clockwise order. Consequently a
/// virtual server at position `p` with predecessor at position `q` owns the
/// arc `(q, p]`, represented here half-open as `[q+1, p+1)`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Ring {
    /// Ring position → virtual server planted there. Positions are unique.
    by_pos: BTreeMap<u32, VsId>,
}

impl Ring {
    /// An empty ring.
    pub fn new() -> Self {
        Ring::default()
    }

    /// Number of virtual servers on the ring.
    pub fn len(&self) -> usize {
        self.by_pos.len()
    }

    /// True iff the ring has no virtual servers.
    pub fn is_empty(&self) -> bool {
        self.by_pos.is_empty()
    }

    /// Inserts a virtual server at `pos`. Returns `false` (and does nothing)
    /// if the position is already taken — callers resample a fresh random id.
    pub fn insert(&mut self, pos: Id, vs: VsId) -> bool {
        use std::collections::btree_map::Entry;
        match self.by_pos.entry(pos.raw()) {
            Entry::Occupied(_) => false,
            Entry::Vacant(e) => {
                e.insert(vs);
                true
            }
        }
    }

    /// Removes the virtual server at `pos`, returning it if present.
    pub fn remove(&mut self, pos: Id) -> Option<VsId> {
        self.by_pos.remove(&pos.raw())
    }

    /// The virtual server registered exactly at `pos`, if any.
    pub fn at(&self, pos: Id) -> Option<VsId> {
        self.by_pos.get(&pos.raw()).copied()
    }

    /// The successor of `key`: the first virtual server at a position `≥ key`
    /// in clockwise (wrapping) order. This is the **owner** of `key`.
    pub fn owner(&self, key: Id) -> Option<VsId> {
        self.by_pos
            .range(key.raw()..)
            .next()
            .or_else(|| self.by_pos.iter().next())
            .map(|(_, &vs)| vs)
    }

    /// Position and id of the owner of `key`.
    pub fn owner_entry(&self, key: Id) -> Option<(Id, VsId)> {
        self.by_pos
            .range(key.raw()..)
            .next()
            .or_else(|| self.by_pos.iter().next())
            .map(|(&p, &vs)| (Id::new(p), vs))
    }

    /// The virtual server strictly before `pos` in clockwise order (the
    /// predecessor of a VS planted at `pos`).
    pub fn predecessor(&self, pos: Id) -> Option<(Id, VsId)> {
        self.by_pos
            .range(..pos.raw())
            .next_back()
            .or_else(|| self.by_pos.iter().next_back())
            .map(|(&p, &vs)| (Id::new(p), vs))
    }

    /// The virtual server strictly after `pos` in clockwise order.
    pub fn successor_after(&self, pos: Id) -> Option<(Id, VsId)> {
        self.by_pos
            .range(pos.raw().wrapping_add(1)..)
            .next()
            .or_else(|| self.by_pos.iter().next())
            .map(|(&p, &vs)| (Id::new(p), vs))
    }

    /// The ownership region of the virtual server at `pos`: `(pred, pos]`.
    /// With a single VS on the ring the region is the full ring.
    pub fn region(&self, pos: Id) -> Arc {
        match self.predecessor(pos) {
            Some((pred, _)) if pred != pos => {
                Arc::from_bounds(pred.wrapping_add(1), pos.wrapping_add(1))
            }
            _ => Arc::full(pos.wrapping_add(1)),
        }
    }

    /// Number of virtual-server positions inside `region`.
    pub fn count_in(&self, region: &Arc) -> usize {
        if region.is_empty() {
            return 0;
        }
        if region.is_full() {
            return self.by_pos.len();
        }
        let start = region.start().raw();
        let end = region.end().raw(); // exclusive
        if start < end {
            self.by_pos.range(start..end).count()
        } else {
            // Wraps past 0: [start, 2^32) ∪ [0, end).
            self.by_pos.range(start..).count() + self.by_pos.range(..end).count()
        }
    }

    /// Number of virtual-server positions inside `region`, counting at most
    /// `cap` — an early-exit variant for callers that only need to
    /// distinguish "empty / one / more" (the K-nary tree's split rule asks
    /// exactly that for every candidate region, so a full range scan per
    /// node would make tree construction quadratic at 50k+ scale).
    pub fn count_in_at_most(&self, region: &Arc, cap: usize) -> usize {
        self.iter_in(region).take(cap).count()
    }

    /// Iterates the virtual servers whose positions lie inside `region`,
    /// clockwise, without materializing them.
    pub fn iter_in<'a>(&'a self, region: &Arc) -> impl Iterator<Item = (Id, VsId)> + 'a {
        use std::ops::Bound::{Excluded, Included, Unbounded};
        let none = (Included(0u32), Excluded(0u32));
        let (first, second) = if region.is_empty() {
            (none, none)
        } else if region.is_full() {
            ((Unbounded, Unbounded), none)
        } else {
            let start = region.start().raw();
            let end = region.end().raw(); // exclusive
            if start < end {
                ((Included(start), Excluded(end)), none)
            } else {
                // Wraps past 0: [start, 2^32) ∪ [0, end).
                ((Included(start), Unbounded), (Unbounded, Excluded(end)))
            }
        };
        self.by_pos
            .range(first)
            .chain(self.by_pos.range(second))
            .map(|(&p, &vs)| (Id::new(p), vs))
    }

    /// The virtual servers whose positions lie inside `region`, clockwise.
    pub fn vss_in(&self, region: &Arc) -> Vec<(Id, VsId)> {
        if region.is_empty() {
            return Vec::new();
        }
        if region.is_full() {
            return self.iter().collect();
        }
        let start = region.start().raw();
        let end = region.end().raw();
        let mut out = Vec::new();
        if start < end {
            out.extend(
                self.by_pos
                    .range(start..end)
                    .map(|(&p, &v)| (Id::new(p), v)),
            );
        } else {
            out.extend(self.by_pos.range(start..).map(|(&p, &v)| (Id::new(p), v)));
            out.extend(self.by_pos.range(..end).map(|(&p, &v)| (Id::new(p), v)));
        }
        out
    }

    /// Iterates `(position, vs)` in clockwise order starting from 0.
    pub fn iter(&self) -> impl Iterator<Item = (Id, VsId)> + '_ {
        self.by_pos.iter().map(|(&p, &vs)| (Id::new(p), vs))
    }

    /// The `count` distinct successors of the VS at `pos` (excluding itself
    /// unless the ring is smaller than `count + 1`), in clockwise order.
    pub fn successors_of(&self, pos: Id, count: usize) -> Vec<(Id, VsId)> {
        let mut out = Vec::with_capacity(count);
        if self.by_pos.is_empty() {
            return out;
        }
        let mut cursor = pos;
        for _ in 0..count.min(self.by_pos.len()) {
            match self.successor_after(cursor) {
                Some((p, vs)) if p != pos => {
                    out.push((p, vs));
                    cursor = p;
                }
                _ => break,
            }
        }
        out
    }
}
