use crate::network::{ChordNetwork, VsId};
use crate::ring::Ring;
use proxbal_id::{Arc, Id};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Length of each virtual server's successor list. Chord recommends
/// `O(log N)` entries; 8 tolerates the churn levels exercised here.
pub const SUCCESSOR_LIST_LEN: usize = 8;

/// Number of finger entries (one per bit of the 32-bit identifier space).
pub const FINGER_COUNT: usize = 32;

/// Result of an iterative lookup.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LookupOutcome {
    /// The virtual server found responsible for the key (`None` if routing
    /// failed — possible only under stale state after churn).
    pub result: Option<VsId>,
    /// Overlay hops taken (finger/successor traversals).
    pub hops: u32,
    /// Dead routing entries encountered (each models a timeout).
    pub timeouts: u32,
}

/// One entry of the sorted finger view: a finger target together with its
/// clockwise offset from the owning VS (`position + 1`), precomputed so
/// lookups never touch the network to learn a finger's position.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
struct FingerEntry {
    /// `position.wrapping_add(1).distance_to(finger position)` — ring
    /// positions are fixed per [`VsId`], so this never goes stale.
    offset: u64,
    /// The finger target.
    vs: VsId,
}

/// Per-virtual-server routing tables.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct VsRouting {
    /// Ring position when the tables were built.
    position: Id,
    /// `fingers[k]` targets the owner of `position + 2^k` (k-th finger).
    /// Indexed by `k` for the round-robin `fix_fingers` repair.
    fingers: Vec<Option<VsId>>,
    /// The distinct finger targets sorted ascending by clockwise offset
    /// from `position + 1`. Lookups binary-search this view for the
    /// closest preceding finger instead of scanning all 32 slots; it is
    /// rebuilt whenever a finger slot changes (repair-time work, which is
    /// off the lookup hot path).
    sorted_fingers: Vec<FingerEntry>,
    /// First `SUCCESSOR_LIST_LEN` successors at build time.
    successors: Vec<VsId>,
}

impl VsRouting {
    /// Recomputes [`VsRouting::sorted_fingers`] from the slot array.
    ///
    /// With fresh tables the slots are already offset-sorted (finger `k`
    /// targets the first VS at or after `position + 2^k`), but incremental
    /// repair updates one slot at a time against a changed ring, which can
    /// break per-slot monotonicity — so sort unconditionally. 32 entries;
    /// negligible next to the ring scans repair already does.
    fn rebuild_sorted(&mut self, net: &ChordNetwork) {
        let base = self.position.wrapping_add(1);
        self.sorted_fingers.clear();
        self.sorted_fingers
            .extend(self.fingers.iter().filter_map(|f| {
                f.map(|vs| FingerEntry {
                    offset: base.distance_to(net.vs(vs).position),
                    vs,
                })
            }));
        self.sorted_fingers.sort_unstable_by_key(|e| e.offset);
        self.sorted_fingers.dedup();
    }
}

/// Finger tables and successor lists for every alive virtual server.
///
/// The tables are a *snapshot*: after peers join, leave or crash, tables go
/// stale until repair runs — exactly the window in which real Chord sees
/// timeouts and reroutes through successor lists. Repair comes in three
/// granularities, from cheapest to most thorough:
/// [`RoutingState::stabilize_round`] (each VS refreshes its successor list
/// and fixes **one** finger, like the real protocol's periodic
/// `fix_fingers`), [`RoutingState::stabilize_vs`] (full rebuild of one
/// VS's tables) and [`RoutingState::stabilize`] (full rebuild of
/// everything).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RoutingState {
    tables: HashMap<VsId, VsRouting>,
    /// Round-robin finger-repair cursor per VS (`fix_fingers` state).
    next_finger: HashMap<VsId, u32>,
}

impl RoutingState {
    /// Builds fresh routing state for every alive virtual server of `net`.
    pub fn build(net: &ChordNetwork) -> Self {
        let mut state = RoutingState::default();
        for (_, vs) in net.ring().iter() {
            state
                .tables
                .insert(vs, Self::table_for(net.ring(), vs, net));
        }
        state
    }

    fn table_for(ring: &Ring, vs: VsId, net: &ChordNetwork) -> VsRouting {
        let position = net.vs(vs).position;
        let fingers = (0..FINGER_COUNT as u32)
            .map(|k| ring.owner(position.finger_start(k)))
            .collect();
        let successors = ring
            .successors_of(position, SUCCESSOR_LIST_LEN)
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        let mut table = VsRouting {
            position,
            fingers,
            sorted_fingers: Vec::new(),
            successors,
        };
        table.rebuild_sorted(net);
        table
    }

    /// Number of virtual servers with routing tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True iff no tables exist.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Rebuilds the tables of a single virtual server against the current
    /// network (one stabilization round for that VS).
    pub fn stabilize_vs(&mut self, net: &ChordNetwork, vs: VsId) {
        if net.vs(vs).alive {
            self.tables.insert(vs, Self::table_for(net.ring(), vs, net));
        } else {
            self.tables.remove(&vs);
        }
    }

    /// Full stabilization: drops tables of dead virtual servers, creates
    /// tables for new ones, and refreshes every finger/successor entry.
    pub fn stabilize(&mut self, net: &ChordNetwork) {
        self.tables.clear();
        for (_, vs) in net.ring().iter() {
            self.tables.insert(vs, Self::table_for(net.ring(), vs, net));
        }
    }

    /// One **incremental** stabilization round, modelling the periodic
    /// `stabilize` + `fix_fingers` of the real protocol: every alive VS
    /// refreshes its successor list (successor-pointer repair) and fixes
    /// exactly **one** finger, round-robin over the 32 finger slots; VSs
    /// that joined since the last round get fresh tables; dead VSs are
    /// forgotten. Full finger repair therefore takes up to 32 rounds —
    /// which is exactly the window churn experiments care about.
    ///
    /// Returns the number of table entries changed (0 once converged).
    pub fn stabilize_round(&mut self, net: &ChordNetwork) -> usize {
        let mut changed = 0;
        // Drop dead VSs.
        let dead: Vec<VsId> = self
            .tables
            .keys()
            .copied()
            .filter(|&v| !net.vs(v).alive)
            .collect();
        for v in dead {
            self.tables.remove(&v);
            self.next_finger.remove(&v);
            changed += 1;
        }
        // New VSs bootstrap full tables (they just ran `join`).
        for (_, vs) in net.ring().iter() {
            if let std::collections::hash_map::Entry::Vacant(e) = self.tables.entry(vs) {
                e.insert(Self::table_for(net.ring(), vs, net));
                changed += 1;
            }
        }
        // Existing VSs: refresh successors, fix one finger.
        let alive: Vec<VsId> = self.tables.keys().copied().collect();
        for vs in alive {
            let position = net.vs(vs).position;
            let successors: Vec<VsId> = net
                .ring()
                .successors_of(position, SUCCESSOR_LIST_LEN)
                .into_iter()
                .map(|(_, v)| v)
                .collect();
            let k = {
                let cursor = self.next_finger.entry(vs).or_insert(0);
                let k = *cursor;
                *cursor = (*cursor + 1) % FINGER_COUNT as u32;
                k
            };
            let fresh_finger = net.ring().owner(position.finger_start(k));
            let table = self.tables.get_mut(&vs).expect("alive table");
            if table.successors != successors {
                table.successors = successors;
                changed += 1;
            }
            if table.fingers[k as usize] != fresh_finger {
                table.fingers[k as usize] = fresh_finger;
                table.rebuild_sorted(net);
                changed += 1;
            }
        }
        changed
    }

    /// Protocol-level join of one virtual server: the joining node picks a
    /// random identifier, asks `bootstrap` to **look up** that identifier's
    /// successor (costing `O(log N)` overlay hops, which are reported),
    /// inserts itself there, and builds its own routing tables. The tables
    /// of pre-existing virtual servers stay stale until the next
    /// [`RoutingState::stabilize`], exactly as in the real protocol.
    ///
    /// Returns the new virtual server and the lookup it performed. `None`
    /// if routing failed (possible only under heavily stale state) — the
    /// caller retries after stabilizing.
    pub fn join_vs_via_lookup<R: rand::Rng>(
        &mut self,
        net: &mut ChordNetwork,
        host: crate::network::PeerId,
        bootstrap: VsId,
        rng: &mut R,
    ) -> Option<(VsId, LookupOutcome)> {
        let position = loop {
            let candidate = Id::new(rng.gen());
            if net.ring().at(candidate).is_none() {
                break candidate;
            }
        };
        let outcome = self.lookup(net, bootstrap, position);
        outcome.result?;
        let vs = net
            .spawn_vs_at(host, position)
            .expect("position checked free");
        self.stabilize_vs(net, vs);
        Some((vs, outcome))
    }

    /// Iterative Chord lookup of `key` starting from virtual server `from`.
    ///
    /// At each step, if the key lies between the current VS and its first
    /// alive successor, the successor is the answer; otherwise the query
    /// forwards to the closest alive preceding finger (falling back to the
    /// successor list when every useful finger is dead). Dead entries count
    /// as timeouts. Fails after `2 + 4·log₂(ring)` hops — only reachable
    /// under heavily stale state.
    pub fn lookup(&self, net: &ChordNetwork, from: VsId, key: Id) -> LookupOutcome {
        let mut hops = 0u32;
        let mut timeouts = 0u32;
        let ring_len = net.ring().len().max(2);
        let hop_limit = 2 + 4 * (usize::BITS - (ring_len - 1).leading_zeros());

        let mut cur = from;
        loop {
            if hops > hop_limit {
                return LookupOutcome {
                    result: None,
                    hops,
                    timeouts,
                };
            }
            let Some(table) = self.tables.get(&cur) else {
                return LookupOutcome {
                    result: None,
                    hops,
                    timeouts,
                };
            };

            // Is the key ours? (A VS owns (pred, self]; equivalently the key
            // is ours iff our region contains it — checked via live region,
            // which the VS always knows for itself.)
            if net.vs(cur).alive && net.region_of(cur).contains(key) {
                return LookupOutcome {
                    result: Some(cur),
                    hops,
                    timeouts,
                };
            }

            // Does the key fall between us and our first alive successor?
            let mut next: Option<VsId> = None;
            let between = Arc::from_bounds(table.position.wrapping_add(1), key.wrapping_add(1));
            for &succ in &table.successors {
                if !net.vs(succ).alive {
                    timeouts += 1;
                    continue;
                }
                let spos = net.vs(succ).position;
                if between.contains(spos) || spos == key {
                    // Successor is not past the key: it may still precede it;
                    // route through it only if no finger is better (handled
                    // below by treating it as candidate).
                    next = Some(succ);
                } else {
                    // First alive successor is at or past the key → answer.
                    return LookupOutcome {
                        result: Some(succ),
                        hops: hops + 1,
                        timeouts,
                    };
                }
                break;
            }

            // Closest preceding alive finger. The sorted view orders the
            // distinct finger targets by clockwise offset from
            // `position + 1`; an entry precedes the key iff its offset is
            // below the key's, so a binary search finds the candidate range
            // and the scan walks it backwards (closest first). Only fingers
            // that actually precede the key are probed — dead entries past
            // the key cost no timeout, and a dead target occupying several
            // slots times out once, matching what a real node (which knows
            // every finger's identifier locally) would contact.
            let key_offset = table.position.wrapping_add(1).distance_to(key);
            let idx = table
                .sorted_fingers
                .partition_point(|e| e.offset < key_offset);
            for e in table.sorted_fingers[..idx].iter().rev() {
                if e.vs == cur {
                    continue;
                }
                if !net.vs(e.vs).alive {
                    timeouts += 1;
                    continue;
                }
                next = Some(e.vs);
                break;
            }

            match next {
                Some(n) if n != cur => {
                    cur = n;
                    hops += 1;
                }
                _ => {
                    return LookupOutcome {
                        result: None,
                        hops,
                        timeouts,
                    }
                }
            }
        }
    }
}
