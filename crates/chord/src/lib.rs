//! A from-scratch Chord DHT simulator.
//!
//! The paper's evaluation runs "a Chord simulator (32-bit identifier space)"
//! in which **each physical node hosts multiple virtual servers** — each
//! virtual server (VS) acts as an independent Chord protocol participant
//! owning a contiguous arc of the ring. Load balancing moves whole virtual
//! servers between physical nodes; Chord sees the move as a *leave* followed
//! by a *join* (paper §2).
//!
//! Main types:
//!
//! * [`Ring`] — the sorted ring of virtual-server positions with
//!   successor/predecessor/ownership queries.
//! * [`ChordNetwork`] — physical peers ([`PeerId`]) hosting virtual servers
//!   ([`VsId`]); join / leave / crash / transfer; region queries.
//! * [`RoutingState`] — per-VS finger tables and successor lists with
//!   iterative greedy lookup (hop-counted) and stabilization, so churn
//!   experiments see genuinely stale routing state until repair runs.
//!
//! # Example
//!
//! ```
//! use proxbal_chord::ChordNetwork;
//! use proxbal_id::Id;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut net = ChordNetwork::new();
//! for _ in 0..8 {
//!     net.join_peer(5, &mut rng); // 5 virtual servers per peer
//! }
//! let key = Id::new(0xCAFE_BABE);
//! let owner_vs = net.ring().owner(key).unwrap();
//! assert!(net.region_of(owner_vs).contains(key));
//! ```

mod network;
mod prefix_routing;
mod ring;
mod routing;

pub use network::{ChordNetwork, PeerId, PeerState, VirtualServer, VsId};
pub use prefix_routing::PrefixRouting;
pub use ring::Ring;
pub use routing::{LookupOutcome, RoutingState, SUCCESSOR_LIST_LEN};

#[cfg(test)]
mod tests;
